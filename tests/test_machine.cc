// CPU interpreter, exception engine, MMIO, and cycle accounting — exercised
// on a bare machine (no EA-MPU policy).
#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.h"
#include "sim/devices.h"
#include "sim/machine.h"

namespace tytan::sim {
namespace {

constexpr std::uint32_t kCodeBase = 0x40000;
constexpr std::uint32_t kStackTop = 0x48000;

/// Assemble and run `source` at kCodeBase until HLT (or cycle limit).
std::unique_ptr<Machine> run_program(std::string_view source,
                                     std::uint64_t limit = 200'000) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  // Machine is non-movable (the obs clock is wired to it once, in the
  // constructor), so the helper hands back a unique_ptr.
  auto machine_ptr = std::make_unique<Machine>();
  Machine& machine = *machine_ptr;
  ByteVec image = object->image;
  for (const isa::Relocation& reloc : object->relocs) {
    // Minimal loader for bare tests.
    const std::uint32_t value = reloc.addend + kCodeBase;
    std::uint8_t* site = image.data() + reloc.offset;
    switch (reloc.kind) {
      case isa::RelocKind::kAbs32: store_le32(site, value); break;
      case isa::RelocKind::kLo16:
        store_le32(site, (load_le32(site) & 0xFFFF0000u) | (value & 0xFFFF));
        break;
      case isa::RelocKind::kHi16:
        store_le32(site, (load_le32(site) & 0xFFFF0000u) | (value >> 16));
        break;
    }
  }
  machine.memory().write_block(kCodeBase, image);
  machine.cpu().eip = kCodeBase + object->entry;
  machine.cpu().set_sp(kStackTop);
  machine.run(limit);
  return machine_ptr;
}

TEST(Machine, ArithmeticAndFlags) {
  auto m_ptr = run_program(R"(
      movi r0, 10
      addi r0, 5
      movi r1, 3
      sub  r0, r1      ; r0 = 12
      movi r2, 4
      mul  r2, r0      ; r2 = 48
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(m.cpu().regs[0], 12u);
  EXPECT_EQ(m.cpu().regs[2], 48u);
}

TEST(Machine, Immediate32BitMaterialization) {
  auto m_ptr = run_program(R"(
      li r3, 0xdeadbeef
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[3], 0xdeadbeefu);
}

TEST(Machine, LoopWithConditionalBranch) {
  auto m_ptr = run_program(R"(
      movi r0, 0
      movi r1, 10
  loop:
      addi r0, 1
      cmp  r0, r1
      jnz  loop
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[0], 10u);
}

TEST(Machine, SignedComparisons) {
  auto m_ptr = run_program(R"(
      movi r0, -3
      cmpi r0, 2
      jlt  is_less
      movi r5, 0
      hlt
  is_less:
      movi r5, 1
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[5], 1u);
}

TEST(Machine, UnsignedComparisonViaCarry) {
  auto m_ptr = run_program(R"(
      movi r0, 1
      cmpi r0, 2        ; 1 - 2 borrows -> carry set
      jc   below
      movi r5, 0
      hlt
  below:
      movi r5, 1
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[5], 1u);
}

TEST(Machine, MemoryLoadsAndStores) {
  auto m_ptr = run_program(R"(
      li   r1, buffer
      movi r2, 0x55
      stw  r2, [r1]
      ldw  r3, [r1]
      stb  r2, [r1+4]
      ldb  r4, [r1+4]
      hlt
  buffer:
      .word 0, 0
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[3], 0x55u);
  EXPECT_EQ(m.cpu().regs[4], 0x55u);
}

TEST(Machine, CallRetAndStack) {
  auto m_ptr = run_program(R"(
      movi r0, 5
      call double
      call double
      hlt
  double:
      add r0, r0
      ret
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[0], 20u);
  EXPECT_EQ(m.cpu().sp(), kStackTop);  // balanced
}

TEST(Machine, PushPop) {
  auto m_ptr = run_program(R"(
      movi r0, 7
      push r0
      movi r0, 0
      pop  r1
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_EQ(m.cpu().regs[1], 7u);
}

TEST(Machine, SoftwareInterruptAndIret) {
  // Handler increments r5 and returns; IDT set up by the test.
  auto object = isa::assemble(R"(
      sti
      movi r5, 0
      int  0x21
      int  0x21
      hlt
  handler:
      addi r5, 1
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecSyscall, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(100'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.cpu().regs[5], 2u);
  EXPECT_EQ(machine.interrupts_dispatched(), 2u);
  EXPECT_EQ(machine.cpu().sp(), kStackTop);
}

TEST(Machine, InterruptLatchesOriginAndVector) {
  auto object = isa::assemble(R"(
      int 0x22
      hlt
  handler:
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecIpc, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(10'000);
  EXPECT_EQ(machine.int_vector(), kVecIpc);
  EXPECT_EQ(machine.int_origin_eip(), kCodeBase);  // the INT instruction
}

TEST(Machine, BadOpcodeFaultsAndHaltsWithoutHandler) {
  Machine machine;
  machine.memory().write32(kCodeBase, 0xEE000000u);
  machine.cpu().eip = kCodeBase;
  machine.run(1'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kDoubleFault);
  EXPECT_EQ(machine.last_fault().type, FaultType::kBadOpcode);
}

TEST(Machine, FaultVectorsToHandler) {
  auto object = isa::assemble(R"(
      .word 0xEE000000      ; invalid opcode at entry
  handler:
      movi r6, 99
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecFault, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(1'000);
  EXPECT_EQ(machine.cpu().regs[6], 99u);
  EXPECT_EQ(machine.fault_count(), 1u);
}

TEST(Machine, BusErrorOnOutOfBounds) {
  auto m_ptr = run_program(R"(
      li  r1, 0x200000      ; beyond physical memory
      ldw r2, [r1]
      hlt
  )", 1'000);
  Machine& m = *m_ptr;
  EXPECT_EQ(m.last_fault().type, FaultType::kBusError);
}

TEST(Machine, SerialMmioWrite) {
  Machine machine;
  auto serial = std::make_shared<SerialConsole>();
  machine.bus().attach(serial);
  auto object = isa::assemble(R"(
      li   r1, 0x100100   ; serial DATA
      movi r2, 72         ; 'H'
      stw  r2, [r1]
      movi r2, 105        ; 'i'
      stw  r2, [r1]
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(10'000);
  EXPECT_EQ(serial->output(), "Hi");
}

TEST(Machine, TimerRaisesPeriodicIrq) {
  Machine machine;
  auto timer = std::make_shared<TimerDevice>();
  timer->set_irq_sink([&machine](std::uint8_t v) { machine.raise_irq(v); });
  machine.bus().attach(timer);

  auto object = isa::assemble(R"(
      sti
  spin:
      jmp spin
  handler:
      addi r5, 1
      cmpi r5, 3
      jz   done
      iret
  done:
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  Machine* m = &machine;
  (void)m;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecTimer, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  timer->write32(TimerDevice::kPeriod, 500);
  timer->write32(TimerDevice::kCtrl, 1);
  machine.run(50'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.cpu().regs[5], 3u);
  EXPECT_GE(timer->ticks_fired(), 3u);
}

TEST(Machine, CliMasksInterrupts) {
  Machine machine;
  auto timer = std::make_shared<TimerDevice>();
  timer->set_irq_sink([&machine](std::uint8_t v) { machine.raise_irq(v); });
  machine.bus().attach(timer);
  auto object = isa::assemble(R"(
      cli
      movi r0, 0
  loop:
      addi r0, 1
      cmpi r0, 2000
      jnz  loop
      hlt
  handler:
      movi r5, 1
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecTimer, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  timer->write32(TimerDevice::kPeriod, 100);
  timer->write32(TimerDevice::kCtrl, 1);
  machine.run(100'000);
  EXPECT_EQ(machine.cpu().regs[5], 0u);  // handler never ran
  EXPECT_TRUE(machine.irq_pending());    // but the line is pending
}

TEST(Machine, RdcycReadsClock) {
  auto m_ptr = run_program(R"(
      rdcyc r0
      nop
      nop
      rdcyc r1
      hlt
  )");
  Machine& m = *m_ptr;
  EXPECT_GT(m.cpu().regs[1], m.cpu().regs[0]);
}

TEST(Machine, CycleAccounting) {
  auto m_ptr = run_program(R"(
      movi r0, 1
      hlt
  )");
  Machine& m = *m_ptr;
  // movi (1) + hlt (1) = 2 cycles exactly on the bare machine.
  EXPECT_EQ(m.cycles(), 2u);
  EXPECT_EQ(m.instructions_executed(), 2u);
}

// ---------------------------------------------------------------------------
// Interrupt/fault edge paths — each test pins a bug fixed in the decode-cache
// PR and fails against the pre-fix machine.
// ---------------------------------------------------------------------------

TEST(MachineInterrupt, FailedDispatchPreservesPreviousLatches) {
  // A dispatch that stack-faults mid-frame must leave the identity latches
  // of the last SUCCESSFUL dispatch intact — the IPC proxy authenticates
  // senders from them, so a task with a corrupted SP must not be able to
  // overwrite them with its own origin before the frame push fails.
  auto object = isa::assemble(R"(
      int  0x22           ; successful dispatch: latches = (here, 0x22)
      movi r7, 2          ; wreck SP: the next frame push lands out of bounds
      int  0x21           ; dispatch aborts on the stack fault
      hlt
  handler:
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecIpc, kCodeBase + object->symbols.at("handler"));
  machine.set_idt_entry(kVecSyscall, kCodeBase + object->symbols.at("handler"));
  // No kVecFault entry: the stack fault double-faults and halts, leaving the
  // latches exactly as the failed dispatch left them.
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(10'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kDoubleFault);
  EXPECT_EQ(machine.last_fault().type, FaultType::kStackFault);
  EXPECT_EQ(machine.int_vector(), kVecIpc);           // NOT 0x21
  EXPECT_EQ(machine.int_origin_eip(), kCodeBase);     // the first INT
}

TEST(MachineInterrupt, StackFaultKeepsIrqPending) {
  // dispatch_pending clears the vector's bit before dispatching.  If the
  // dispatch stack-faults, the line must stay asserted: the IRQ is a level
  // signal the device never knew was lost, and the fault handler may repair
  // SP and expect the interrupt to be delivered afterwards.
  auto object = isa::assemble(R"(
  spin:
      jmp spin
  fault_handler:
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(9, kCodeBase);  // any non-null handler
  machine.set_idt_entry(kVecFault,
                        kCodeBase + object->symbols.at("fault_handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(2);  // frame push will fault
  machine.raise_irq(9);
  machine.run(10'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.last_fault().type, FaultType::kStackFault);
  EXPECT_TRUE(machine.irq_pending());  // vector 9 re-asserted, not lost
}

TEST(MachineInterrupt, UnhandledVectorDropsPendingIrq) {
  // Pinned semantics (referenced from Machine::dispatch_pending): a raised
  // vector with a null IDT entry is a configuration error — the request is
  // dropped after the kNoHandler fault, NOT retried, since re-asserting a
  // vector that can never dispatch would livelock interrupt delivery.
  auto object = isa::assemble(R"(
  spin:
      jmp spin
  fault_handler:
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  // No IDT entry for vector 9.
  machine.set_idt_entry(kVecFault,
                        kCodeBase + object->symbols.at("fault_handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.raise_irq(9);
  machine.run(10'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.last_fault().type, FaultType::kNoHandler);
  EXPECT_FALSE(machine.irq_pending());  // dropped, not re-asserted
}

TEST(MachineFault, HandlerAtNextInstructionIsNotRewritten) {
  // The old recovery heuristic rewrote EIP back to the faulting instruction
  // whenever EIP still equalled `pc + 4` after a failed load — which also
  // matched a fault handler that happened to live at exactly `pc + 4`,
  // bouncing execution back into the faulting instruction forever.  The
  // explicit redirected-EIP flag keeps the handler dispatch intact.
  auto object = isa::assemble(R"(
      li   r1, 0x200000   ; beyond physical memory
      ldw  r2, [r1]       ; bus error; the handler is the NEXT instruction
  handler:
      movi r6, 99
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecFault, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(10'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.cpu().regs[6], 99u);  // the handler ran exactly once
  EXPECT_EQ(machine.fault_count(), 1u);
}

TEST(Machine, MmioByteWriteHitsAddressedLane) {
  // A byte store to an MMIO register must read-modify-write the addressed
  // lane of the 32-bit register, not clobber the whole word with the byte
  // zero-extended into lane 0.
  Machine machine;
  auto timer = std::make_shared<TimerDevice>();
  machine.bus().attach(timer);
  auto object = isa::assemble(R"(
      li   r1, 0x100004   ; timer PERIOD register
      li   r2, 0x11223344
      stw  r2, [r1]
      movi r3, 0xAA
      stb  r3, [r1+1]     ; lane 1 only
      ldw  r4, [r1]
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(10'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.cpu().regs[4], 0x1122AA44u);
  EXPECT_EQ(timer->read32(TimerDevice::kPeriod), 0x1122AA44u);
}

TEST(Machine, FirmwareDispatch) {
  Machine machine;
  int calls = 0;
  machine.register_firmware(kFwOsKernel, "probe", [&](Machine& m) {
    ++calls;
    m.charge(10);
    m.cpu().eip = kCodeBase;  // hand control to guest
  });
  auto object = isa::assemble("hlt\n");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kFwOsKernel;
  machine.run(1'000);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.firmware_invocations(), 1u);
}

}  // namespace
}  // namespace tytan::sim
