// Int Mux: secure context save/wipe/restore across real interrupts
// (paper §4 "Interrupting secure tasks" / Tables 2 and 3).
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

// A secure task that parks distinctive values in its registers, then spins.
// Register r5 counts loop iterations so the test can observe progress across
// preemptions.
constexpr std::string_view kSpinner = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, 0xcafe0001
    li   r3, 0xcafe0002
    li   r4, 0xcafe0003
    movi r5, 0
loop:
    addi r5, 1
    jmp  loop
)";

TEST(IntMux, SecureTaskSurvivesPreemption) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  ASSERT_TRUE(task.is_ok());
  // Run long enough for many tick preemptions (tick = 48,000 cycles).
  platform.run_for(3'000'000);
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  ASSERT_NE(tcb, nullptr);
  EXPECT_GT(tcb->activations, 5u) << "task was not repeatedly resumed";

  // Whenever it is interrupted, its loop register keeps growing — context is
  // restored exactly (if r5 were wiped or corrupted the count would reset).
  auto sp = platform.int_mux().shadow_sp(*task);
  ASSERT_TRUE(sp.is_ok());
  // Saved r5 lives at [sp+4] (frame: r6 at sp, r5 above it).
  auto r5 = platform.machine().fw_read32(core::IntMux::kIdent, *sp + 4);
  ASSERT_TRUE(r5.is_ok());
  EXPECT_GT(*r5, 10'000u);
}

TEST(IntMux, RegistersWipedBeforeOsRuns) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  ASSERT_TRUE(task.is_ok());

  // Step until the task has run and a tick interrupt fired while it was
  // current; immediately after the Int Mux branch (EIP at a firmware
  // handler), the register file must contain no 0xcafe... values.
  auto& machine = platform.machine();
  bool checked = false;
  for (int i = 0; i < 2'000'000 && !checked; ++i) {
    machine.step();
    if (machine.is_firmware(machine.cpu().eip) &&
        machine.cpu().eip == sim::kFwOsKernel + core::Kernel::kTickHandlerOff) {
      const rtos::Tcb* current = platform.scheduler().current();
      if (current != nullptr && current->handle == *task) {
        for (unsigned r = 0; r < isa::kNumGprs; ++r) {
          EXPECT_NE(machine.cpu().regs[r] & 0xFFFF0000u, 0xcafe0000u)
              << "secret leaked in r" << r;
        }
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked) << "never observed a tick landing on the secure task";
}

TEST(IntMux, SavedFrameIsInTaskStackNotOsVisible) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  ASSERT_TRUE(task.is_ok());
  platform.run_for(500'000);

  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  auto sp = platform.int_mux().shadow_sp(*task);
  ASSERT_TRUE(sp.is_ok());
  // The saved SP lies inside the task's own region.
  EXPECT_GE(*sp, tcb->region_base);
  EXPECT_LT(*sp, tcb->region_base + tcb->region_size);
  // The OS cannot read the frame (EA-MPU) ...
  EXPECT_EQ(platform.machine().fw_read32(sim::kFwOsKernel, *sp).status().code(),
            Err::kPermissionDenied);
  // ... and cannot read the shadow TCB either.
  EXPECT_EQ(platform.machine().fw_read32(sim::kFwOsKernel, core::kShadowTcbBase)
                .status()
                .code(),
            Err::kPermissionDenied);
}

TEST(IntMux, SaveStatsMatchCostModel) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  ASSERT_TRUE(task.is_ok());

  // Run until at least one secure save happened.
  ASSERT_TRUE(platform.run_until(
      [&] {
        return platform.int_mux().last_save().secure &&
               platform.int_mux().last_save().total > 0;
      },
      5'000'000));
  const auto& save = platform.int_mux().last_save();
  const auto& costs = platform.machine().costs();
  // Paper Table 2: store 38, wipe 16, branch 41, overall 95.
  EXPECT_EQ(save.store, 7 * costs.intmux_store_reg + costs.intmux_store_shadow);
  EXPECT_EQ(save.wipe, 8 * costs.intmux_wipe_reg);
  EXPECT_EQ(save.branch, costs.intmux_branch);
  EXPECT_EQ(save.total, save.store + save.wipe + save.branch);
}

TEST(IntMux, NormalTaskSaveIsCheaperAndUnwiped) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::string source(kSpinner);
  source.erase(source.find("    .secure\n"), 12);
  auto task = platform.load_task_source(source, {.name = "normal-spin"});
  ASSERT_TRUE(task.is_ok());

  ASSERT_TRUE(platform.run_until(
      [&] {
        return !platform.int_mux().last_save().secure &&
               platform.int_mux().last_save().store > 0;
      },
      5'000'000));
  const auto& save = platform.int_mux().last_save();
  EXPECT_EQ(save.wipe, 0u);
  EXPECT_EQ(save.store, platform.machine().costs().ctx_save_normal);
  // The OS *can* read a normal task's saved frame.
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  ASSERT_NE(tcb, nullptr);
  if (tcb->context_saved) {
    EXPECT_TRUE(platform.machine().fw_read32(sim::kFwOsKernel, tcb->saved_sp).is_ok());
  }
}

TEST(IntMux, ResumeStatsMatchTable3Shape) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  ASSERT_TRUE(task.is_ok());
  ASSERT_TRUE(platform.run_until(
      [&] { return platform.int_mux().last_resume().total > 0; }, 5'000'000));
  const auto& resume = platform.int_mux().last_resume();
  const auto& costs = platform.machine().costs();
  EXPECT_EQ(resume.branch, costs.resume_branch);
  EXPECT_GT(resume.restore, costs.resume_branch);  // restore dominates (Table 3)
}

TEST(IntMux, EntryPointEnforcedAgainstJumpIntoTask) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto victim = platform.load_task_source(kSpinner, {.name = "victim", .auto_start = false});
  ASSERT_TRUE(victim.is_ok());
  const rtos::Tcb* vt = platform.scheduler().get(*victim);

  // An attacker task jumps into the middle of the victim (code-reuse attempt).
  const std::string attacker =
      "    .secure\n    .stack 128\n    .entry main\nmain:\n    li r1, " +
      std::to_string(vt->entry + 8) + "\n    jmpr r1\nhang:\n    jmp hang\n";
  auto attacker_task = platform.load_task_source(attacker, {.name = "attacker"});
  ASSERT_TRUE(attacker_task.is_ok());

  const std::uint64_t kills_before = platform.kernel().fault_kills();
  platform.run_until([&] { return platform.kernel().fault_kills() > kills_before; },
                     5'000'000);
  EXPECT_GT(platform.kernel().fault_kills(), kills_before);
  EXPECT_EQ(platform.machine().last_fault().type, sim::FaultType::kMpuTransfer);
}

}  // namespace
}  // namespace tytan
