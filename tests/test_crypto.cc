#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/seal.h"
#include "crypto/sha1.h"
#include "crypto/xtea.h"

namespace tytan::crypto {
namespace {

ByteVec str_bytes(std::string_view s) {
  return ByteVec(s.begin(), s.end());
}

// -- SHA-1: FIPS 180-2 / RFC 3174 test vectors -------------------------------

struct Sha1Vector {
  const char* message;
  const char* digest_hex;
};

class Sha1VectorTest : public ::testing::TestWithParam<Sha1Vector> {};

TEST_P(Sha1VectorTest, MatchesReference) {
  const auto& [message, digest_hex] = GetParam();
  const Sha1Digest digest = Sha1::hash(str_bytes(message));
  EXPECT_EQ(hex_encode(digest), digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    KnownVectors, Sha1VectorTest,
    ::testing::Values(
        Sha1Vector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        Sha1Vector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        Sha1Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        Sha1Vector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const ByteVec chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.update(chunk);
  }
  EXPECT_EQ(hex_encode(ctx.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingEqualsOneShot) {
  const ByteVec data = str_bytes("hello world, this spans multiple updates");
  Sha1 ctx;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    ctx.update(std::span(data).subspan(i, std::min<std::size_t>(7, data.size() - i)));
  }
  EXPECT_EQ(ctx.finish(), Sha1::hash(data));
}

TEST(Sha1, BlockCountMatchesPadding) {
  EXPECT_EQ(sha1_block_count(0), 1u);
  EXPECT_EQ(sha1_block_count(55), 1u);   // 55 + 1 + 8 = 64
  EXPECT_EQ(sha1_block_count(56), 2u);   // spills into a second block
  EXPECT_EQ(sha1_block_count(64), 2u);
  EXPECT_EQ(sha1_block_count(119), 2u);
  EXPECT_EQ(sha1_block_count(120), 3u);
}

TEST(Sha1, BlocksProcessedCounter) {
  Sha1 ctx;
  ctx.update(ByteVec(130, 0x5a));
  EXPECT_EQ(ctx.blocks_processed(), 2u);  // 128 bytes compressed, 2 buffered
  ctx.finish();
}

// -- HMAC-SHA1: RFC 2202 test vectors ------------------------------------------

TEST(HmacSha1, Rfc2202Case1) {
  const ByteVec key(20, 0x0b);
  const HmacTag tag = HmacSha1::mac(key, str_bytes("Hi There"));
  EXPECT_EQ(hex_encode(tag), "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  const HmacTag tag =
      HmacSha1::mac(str_bytes("Jefe"), str_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const ByteVec key(20, 0xaa);
  const ByteVec data(50, 0xdd);
  EXPECT_EQ(hex_encode(HmacSha1::mac(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, LongKeyIsHashedFirst) {
  const ByteVec key(80, 0xaa);
  const HmacTag tag =
      HmacSha1::mac(key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, VerifyAcceptsAndRejects) {
  const ByteVec key = str_bytes("k");
  const ByteVec data = str_bytes("payload");
  HmacTag tag = HmacSha1::mac(key, data);
  EXPECT_TRUE(HmacSha1::verify(key, data, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha1::verify(key, data, tag));
}

// -- KDF -------------------------------------------------------------------------

TEST(Kdf, DeterministicAndDomainSeparated) {
  const ByteVec key = str_bytes("platform-key");
  const Key128 a = derive_key128(key, "attest", {});
  const Key128 b = derive_key128(key, "attest", {});
  const Key128 c = derive_key128(key, "storage", {});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Kdf, ContextSeparates) {
  const ByteVec key = str_bytes("k");
  const ByteVec ctx1 = str_bytes("task-1");
  const ByteVec ctx2 = str_bytes("task-2");
  EXPECT_NE(derive_key128(key, "seal", ctx1), derive_key128(key, "seal", ctx2));
}

TEST(Kdf, ArbitraryOutputLength) {
  const ByteVec key = str_bytes("k");
  const ByteVec out50 = derive(key, "x", {}, 50);
  const ByteVec out16 = derive(key, "x", {}, 16);
  ASSERT_EQ(out50.size(), 50u);
  // Prefix property: shorter derivations are prefixes of longer ones.
  EXPECT_TRUE(std::equal(out16.begin(), out16.end(), out50.begin()));
}

// -- XTEA -------------------------------------------------------------------------

TEST(Xtea, KnownVector) {
  // XTEA reference vector: key = 000102...0f, plaintext 4142434445464748.
  Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  // Our key/block loads are little-endian; verify encrypt/decrypt inversion
  // and avalanche rather than a byte-order-specific magic constant.
  std::uint32_t v0 = 0x41424344, v1 = 0x45464748;
  xtea_encrypt_block(key, v0, v1);
  EXPECT_NE(v0, 0x41424344u);
  std::uint32_t w0 = v0, w1 = v1;
  xtea_decrypt_block(key, w0, w1);
  EXPECT_EQ(w0, 0x41424344u);
  EXPECT_EQ(w1, 0x45464748u);
}

TEST(Xtea, CtrRoundTripAndNonceSensitivity) {
  Key128 key{};
  key[0] = 7;
  const ByteVec plain = str_bytes("counter mode handles arbitrary lengths, even 41");
  ByteVec cipher(plain.size());
  xtea_ctr_crypt(key, 123, plain, cipher);
  EXPECT_NE(cipher, plain);

  ByteVec back(plain.size());
  xtea_ctr_crypt(key, 123, cipher, back);
  EXPECT_EQ(back, plain);

  ByteVec other(plain.size());
  xtea_ctr_crypt(key, 124, plain, other);
  EXPECT_NE(other, cipher);
}

// -- Sealing -------------------------------------------------------------------------

TEST(Seal, RoundTrip) {
  Key128 key{};
  key[3] = 9;
  const ByteVec plain = str_bytes("secret configuration");
  const SealedBlob blob = seal(key, 1, plain);
  auto back = unseal(key, blob);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, plain);
}

TEST(Seal, WrongKeyFailsAuthentication) {
  Key128 key{};
  Key128 other{};
  other[0] = 1;
  const SealedBlob blob = seal(key, 7, str_bytes("data"));
  EXPECT_EQ(unseal(other, blob).status().code(), Err::kCorrupt);
}

TEST(Seal, TamperedCiphertextRejected) {
  Key128 key{};
  SealedBlob blob = seal(key, 7, str_bytes("data"));
  blob.ciphertext[0] ^= 1;
  EXPECT_EQ(unseal(key, blob).status().code(), Err::kCorrupt);
}

TEST(Seal, SerializationRoundTrip) {
  Key128 key{};
  const SealedBlob blob = seal(key, 99, str_bytes("xyz"));
  const ByteVec raw = blob.serialize();
  auto parsed = SealedBlob::deserialize(raw);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->nonce, 99u);
  EXPECT_EQ(parsed->ciphertext, blob.ciphertext);
  EXPECT_EQ(parsed->tag, blob.tag);
  auto back = unseal(key, *parsed);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, str_bytes("xyz"));
}

TEST(Seal, TruncatedBlobRejected) {
  EXPECT_FALSE(SealedBlob::deserialize(ByteVec(10, 0)).is_ok());
}

TEST(Seal, EmptyPlaintextSupported) {
  Key128 key{};
  const SealedBlob blob = seal(key, 1, {});
  auto back = unseal(key, blob);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace tytan::crypto
