// Randomized property tests over the allocator, the scheduler, the EA-MPU,
// and the crypto layer (deterministic seeds; invariants checked throughout).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "core/task_loader.h"
#include "crypto/seal.h"
#include "crypto/sha1.h"
#include "hw/eampu.h"
#include "rtos/scheduler.h"

namespace tytan {
namespace {

// ---------------------------------------------------------------------------
// Arena: random alloc/free sequences keep the accounting exact and never
// produce overlapping live blocks.
// ---------------------------------------------------------------------------

TEST(ArenaProperty, RandomAllocFreeNeverOverlapsAndNeverLeaks) {
  std::mt19937 rng(42);
  core::RamArena arena(0x10000, 0x20000);
  const std::uint32_t total = arena.free_bytes();
  std::map<std::uint32_t, std::uint32_t> live;  // base -> size (aligned)

  for (int step = 0; step < 2'000; ++step) {
    const bool do_alloc = live.empty() || (rng() % 2 == 0);
    if (do_alloc) {
      const std::uint32_t request = 16 + rng() % 2048;
      auto base = arena.alloc(request);
      if (base.is_ok()) {
        const std::uint32_t aligned = (request + 63u) & ~63u;
        // No overlap with any live block.
        for (const auto& [other_base, other_size] : live) {
          EXPECT_FALSE(ranges_overlap(*base, aligned, other_base, other_size))
              << "step " << step;
        }
        live[*base] = aligned;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      EXPECT_TRUE(arena.free(it->first).is_ok()) << "step " << step;
      live.erase(it);
    }
    // Accounting: free + live == total.
    std::uint32_t live_bytes = 0;
    for (const auto& [base, size] : live) {
      live_bytes += size;
    }
    ASSERT_EQ(arena.free_bytes() + live_bytes, total) << "step " << step;
  }
  for (const auto& [base, size] : live) {
    (void)size;
    EXPECT_TRUE(arena.free(base).is_ok());
  }
  EXPECT_EQ(arena.free_bytes(), total);
  EXPECT_EQ(arena.block_count(), 1u);  // fully coalesced at the end
}

TEST(ArenaProperty, DoubleFreeRejected) {
  core::RamArena arena(0x1000, 0x1000);
  auto a = arena.alloc(64);
  ASSERT_TRUE(a.is_ok());
  EXPECT_TRUE(arena.free(*a).is_ok());
  EXPECT_FALSE(arena.free(*a).is_ok());
}

// ---------------------------------------------------------------------------
// Scheduler: random operations never violate the structural invariants:
// at most one running task; ready tasks are exactly those in ready state;
// the picked task always has maximal priority.
// ---------------------------------------------------------------------------

TEST(SchedulerProperty, RandomOpsPreserveInvariants) {
  std::mt19937 rng(7);
  rtos::Scheduler sched;
  std::vector<rtos::TaskHandle> handles;

  auto check_invariants = [&] {
    // The picked candidate outranks every other ready task.
    const rtos::TaskHandle next = sched.pick_next();
    if (next != rtos::kNoTask) {
      const unsigned p = sched.get(next)->priority;
      for (const rtos::TaskHandle h : sched.handles()) {
        const rtos::Tcb* tcb = sched.get(h);
        if (tcb->state == rtos::TaskState::kReady) {
          ASSERT_LE(tcb->priority, std::max(p, tcb->priority));
          ASSERT_GE(p, tcb->priority);
        }
      }
    }
    // At most one running task, and it matches current_handle().
    int running = 0;
    for (const rtos::TaskHandle h : sched.handles()) {
      if (sched.get(h)->state == rtos::TaskState::kRunning) {
        ++running;
        ASSERT_EQ(sched.current_handle(), h);
      }
    }
    ASSERT_LE(running, 1);
  };

  for (int step = 0; step < 3'000; ++step) {
    switch (rng() % 8) {
      case 0: {
        auto h = sched.create({.name = "t" + std::to_string(step),
                               .priority = static_cast<unsigned>(rng() % rtos::kNumPriorities)});
        if (h.is_ok()) {
          sched.make_ready(*h);
          handles.push_back(*h);
        }
        break;
      }
      case 1:
        if (!handles.empty()) {
          const auto h = handles[rng() % handles.size()];
          if (sched.get(h) != nullptr) {
            sched.destroy(h);
          }
        }
        break;
      case 2: {
        const rtos::TaskHandle next = sched.pick_next();
        if (next != rtos::kNoTask && sched.current_handle() == rtos::kNoTask) {
          ASSERT_TRUE(sched.dispatch(next).is_ok());
        }
        break;
      }
      case 3:
        if (sched.current() != nullptr) {
          sched.preempt_current();
        }
        break;
      case 4:
        if (sched.current() != nullptr) {
          sched.delay_until(sched.current_handle(), sched.tick_count() + 1 + rng() % 5);
        }
        break;
      case 5:
        sched.tick();
        break;
      case 6:
        if (!handles.empty()) {
          const auto h = handles[rng() % handles.size()];
          if (sched.get(h) != nullptr) {
            sched.suspend(h);
          }
        }
        break;
      case 7:
        if (!handles.empty()) {
          const auto h = handles[rng() % handles.size()];
          const rtos::Tcb* tcb = sched.get(h);
          if (tcb != nullptr && tcb->state == rtos::TaskState::kSuspended) {
            sched.resume(h);
          }
        }
        break;
    }
    check_invariants();
  }
}

TEST(SchedulerProperty, DelayedTasksWakeExactlyOnTime) {
  rtos::Scheduler sched;
  std::vector<std::pair<rtos::TaskHandle, std::uint64_t>> wakes;
  std::mt19937 rng(3);
  for (int i = 0; i < 30; ++i) {
    auto h = sched.create({.name = "d" + std::to_string(i), .priority = 2});
    ASSERT_TRUE(h.is_ok());
    sched.make_ready(*h);
    const std::uint64_t wake = 1 + rng() % 50;
    ASSERT_TRUE(sched.delay_until(*h, wake).is_ok());
    wakes.emplace_back(*h, wake);
  }
  for (std::uint64_t tick = 1; tick <= 60; ++tick) {
    sched.tick();
    for (const auto& [h, wake] : wakes) {
      const rtos::Tcb* tcb = sched.get(h);
      if (tick >= wake) {
        EXPECT_EQ(tcb->state, rtos::TaskState::kReady) << "tick " << tick;
      } else {
        EXPECT_EQ(tcb->state, rtos::TaskState::kBlocked) << "tick " << tick;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EA-MPU: random rule sets — an access is allowed iff the reference model
// (direct evaluation of the semantics) says so.
// ---------------------------------------------------------------------------

TEST(EaMpuProperty, MatchesReferenceModelOnRandomConfigurations) {
  std::mt19937 rng(99);
  for (int config = 0; config < 50; ++config) {
    hw::EaMpu mpu;
    std::vector<hw::Rule> rules;
    const std::size_t rule_count = 1 + rng() % 6;
    for (std::size_t i = 0; i < rule_count; ++i) {
      hw::Rule rule;
      rule.code_start = 0x40000 + (rng() % 8) * 0x1000;
      rule.code_size = 0x800;
      rule.data_start = 0x60000 + (rng() % 8) * 0x1000;
      rule.data_size = 0x800;
      rule.perms = static_cast<std::uint8_t>(1 + rng() % 3);  // R, W, or RW
      ASSERT_TRUE(mpu.write_slot(i, rule).is_ok());
      rules.push_back(rule);
    }
    for (int query = 0; query < 200; ++query) {
      const std::uint32_t ip = 0x40000 + rng() % 0x9000;
      const std::uint32_t addr = 0x5F000 + rng() % 0xA000;
      const auto access = (rng() % 2 == 0) ? sim::Access::kRead : sim::Access::kWrite;
      const std::uint8_t wanted =
          access == sim::Access::kRead ? hw::kPermRead : hw::kPermWrite;
      // Reference model: protected iff covered by any rule; allowed iff some
      // covering rule grants (no exec regions / background / os bits here).
      bool covered = false;
      bool granted = false;
      for (const hw::Rule& rule : rules) {
        if (addr >= rule.data_start && addr - rule.data_start < rule.data_size) {
          covered = true;
          if (ip >= rule.code_start && ip - rule.code_start < rule.code_size &&
              (rule.perms & wanted) != 0) {
            granted = true;
          }
        }
      }
      const bool expected = !covered || granted;
      EXPECT_EQ(mpu.allows(ip, addr, access), expected)
          << "config " << config << " ip=0x" << std::hex << ip << " addr=0x" << addr;
    }
  }
}

// ---------------------------------------------------------------------------
// Crypto properties.
// ---------------------------------------------------------------------------

TEST(CryptoProperty, Sha1ChunkingInvariance) {
  std::mt19937 rng(5);
  ByteVec data(3'000);
  for (auto& byte : data) {
    byte = static_cast<std::uint8_t>(rng());
  }
  const auto reference = crypto::Sha1::hash(data);
  for (const std::size_t chunk : {1ul, 7ul, 64ul, 65ul, 1000ul}) {
    crypto::Sha1 ctx;
    for (std::size_t i = 0; i < data.size(); i += chunk) {
      ctx.update(std::span(data).subspan(i, std::min(chunk, data.size() - i)));
    }
    EXPECT_EQ(ctx.finish(), reference) << "chunk " << chunk;
  }
}

TEST(CryptoProperty, SealRoundTripForRandomSizes) {
  std::mt19937 rng(11);
  crypto::Key128 key{};
  key[7] = 0x5a;
  for (int i = 0; i < 60; ++i) {
    ByteVec data(rng() % 600);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng());
    }
    const auto blob = crypto::seal(key, i + 1, data);
    auto back = crypto::unseal(key, blob);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, data);
  }
}

TEST(CryptoProperty, SingleBitFlipsAlwaysDetected) {
  crypto::Key128 key{};
  const ByteVec data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto blob = crypto::seal(key, 1, data);
  ByteVec wire = blob.serialize();
  std::mt19937 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    ByteVec mutated = wire;
    mutated[rng() % mutated.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    if (mutated == wire) {
      continue;
    }
    auto parsed = crypto::SealedBlob::deserialize(mutated);
    if (!parsed.is_ok()) {
      continue;  // structurally rejected — fine
    }
    EXPECT_FALSE(crypto::unseal(key, *parsed).is_ok()) << "trial " << trial;
  }
}

TEST(CryptoProperty, IdentityCollisionFreeOverGeneratedBinaries) {
  // 200 distinct tiny binaries -> 200 distinct 64-bit identities.
  std::set<std::array<std::uint8_t, 8>> seen;
  for (int i = 0; i < 200; ++i) {
    ByteVec image(32);
    store_le32(image.data(), static_cast<std::uint32_t>(i));
    const auto digest = crypto::Sha1::hash(image);
    std::array<std::uint8_t, 8> id{};
    std::copy(digest.begin(), digest.begin() + 8, id.begin());
    EXPECT_TRUE(seen.insert(id).second) << "collision at " << i;
  }
}

}  // namespace
}  // namespace tytan
