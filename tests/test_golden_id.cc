// End-to-end measurement property over generated programs: for ANY valid
// relocatable program, the device-side RTM measurement (after relocation at
// an arbitrary base) equals the verifier's offline golden measurement of the
// un-relocated binary.  This is the property remote attestation rests on.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/platform.h"
#include "verifier/verifier.h"

namespace tytan {
namespace {

using core::Platform;

/// Generate a random but valid secure task: a yield loop plus a random mix
/// of data words, address materializations (li -> LO16/HI16 relocs), and
/// address tables (.word label -> ABS32 relocs).
std::string random_program(std::mt19937& rng) {
  std::ostringstream os;
  os << "    .secure\n    .stack 256\n    .entry main\nmain:\n";
  const int uses = 1 + rng() % 4;
  for (int i = 0; i < uses; ++i) {
    os << "    li   r" << (2 + rng() % 4) << ", blob" << rng() % 3 << "\n";
  }
  os << "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n";
  for (int blob = 0; blob < 3; ++blob) {
    os << "blob" << blob << ":\n";
    const int words = 1 + rng() % 6;
    for (int w = 0; w < words; ++w) {
      if (rng() % 3 == 0) {
        os << "    .word blob" << rng() % 3 << "\n";  // ABS32 reloc
      } else {
        os << "    .word " << rng() % 100000 << "\n";
      }
    }
    if (rng() % 2 == 0) {
      os << "    .space " << (rng() % 120) << "\n";
    }
  }
  return os.str();
}

TEST(GoldenId, DeviceMeasurementMatchesOfflineGoldenForRandomPrograms) {
  std::mt19937 rng(31337);
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  verifier::GoldenDatabase db;

  for (int trial = 0; trial < 40; ++trial) {
    const std::string source = random_program(rng);
    auto object = isa::assemble(source);
    ASSERT_TRUE(object.is_ok()) << object.status().to_string() << "\n" << source;
    const auto& release =
        db.add_release("t" + std::to_string(trial), 1, *object);

    auto task = platform.load_task(*object, {.name = "t" + std::to_string(trial),
                                             .auto_start = false});
    ASSERT_TRUE(task.is_ok()) << task.status().to_string();
    const rtos::Tcb* tcb = platform.scheduler().get(*task);
    EXPECT_EQ(tcb->identity, release.identity)
        << "trial " << trial << " relocs=" << object->relocs.size()
        << " base=0x" << std::hex << tcb->region_base;
    // The relocated in-memory image differs from the golden one whenever
    // relocations exist — yet the measurement matched (de-relocation works).
    if (!object->relocs.empty()) {
      ByteVec in_memory(object->image.size());
      platform.machine().memory().read_block(tcb->region_base, in_memory);
      EXPECT_NE(in_memory, object->image) << "trial " << trial;
    }
    ASSERT_TRUE(platform.unload_task(*task).is_ok());
  }
}

TEST(GoldenId, ReMeasurementAfterExecutionOfPureCodeIsStable) {
  // A task whose image is never self-modified re-measures identically after
  // running (execution does not disturb the measured bytes; the stack and
  // bss are outside the image).
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, table
      ldw  r3, [r2]
      movi r0, 1
      int  0x21
      jmp  main
  table:
      .word table
  )");
  ASSERT_TRUE(object.is_ok());
  auto task = platform.load_task(*object, {.name = "stable"});
  ASSERT_TRUE(task.is_ok());
  const rtos::TaskIdentity before = platform.scheduler().get(*task)->identity;
  platform.run_for(2'000'000);
  auto digest = platform.rtm().measure_now(*platform.scheduler().get(*task),
                                           object->relocs);
  ASSERT_TRUE(digest.is_ok());
  EXPECT_EQ(core::Rtm::identity_from_digest(*digest), before);
}

TEST(GoldenId, SelfModifyingTaskChangesItsMeasurement) {
  // The flip side: a task that patches its own image no longer matches its
  // golden measurement — exactly what a verifier should detect.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, patch_me
      li   r3, 0xBADC0DE
      stw  r3, [r2]
  park:
      movi r0, 1
      int  0x21
      jmp  park
  patch_me:
      .word 0
  )");
  ASSERT_TRUE(object.is_ok());
  auto task = platform.load_task(*object, {.name = "sneaky"});
  ASSERT_TRUE(task.is_ok());
  const rtos::TaskIdentity load_time = platform.scheduler().get(*task)->identity;
  platform.run_for(2'000'000);  // the task patches itself
  auto digest = platform.rtm().measure_now(*platform.scheduler().get(*task),
                                           object->relocs);
  ASSERT_TRUE(digest.is_ok());
  EXPECT_NE(core::Rtm::identity_from_digest(*digest), load_time);
}

}  // namespace
}  // namespace tytan
