// Execution observatory (obs/heat.h) — the PR's acceptance properties:
//
//   * zero simulated-cycle cost: the same program on the same machine, heat
//     on vs off, produces bit-identical cycle counts, instruction counts,
//     and final register state;
//   * exact accounting: flushed block instruction counters sum to exactly
//     instructions_executed(), and so does the opcode histogram;
//   * static/dynamic block agreement: CFG leaders split runtime blocks at
//     analyzer boundaries;
//   * classify() mirrors allows() decision-for-decision on the EA-MPU;
//   * dynamic indirect-branch edge profiles are a subset of the statically
//     VSA-resolved target sets over the examples/asm corpus;
//   * fleet aggregation is byte-identical across thread counts;
//   * the JSONL export round-trips through the parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/platform.h"
#include "fleet/verifier_workload.h"
#include "hw/eampu.h"
#include "isa/assembler.h"
#include "obs/heat.h"
#include "sim/machine.h"
#include "tbf/tbf.h"

namespace tytan {
namespace {

// The obs layer mirrors the EA-MPU slot count by value (it cannot include
// src/hw); this is the one TU where both constants are visible.
static_assert(obs::HeatProfile::kMpuSlotBuckets == hw::EaMpu::kNumSlots,
              "heat MPU bucket table no longer matches the EA-MPU slot count");

isa::ObjectFile assemble(const std::string& source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  return object.take();
}

/// Load `object` at kBase on a bare machine (no policy, no platform).
constexpr std::uint32_t kBase = 0x40000;

void load_bare(sim::Machine& machine, const isa::ObjectFile& object) {
  ByteVec image = object.image;
  for (const isa::Relocation& reloc : object.relocs) {
    tbf::apply_relocation(reloc, image, kBase);
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    machine.memory().write8(kBase + static_cast<std::uint32_t>(i), image[i]);
  }
  machine.cpu().eip = kBase + object.entry;
  machine.cpu().set_sp(0x60000);
}

constexpr const char kLoopTask[] = R"(
    .entry main
main:
    movi r1, 0
loop:
    addi r1, 1
    cmpi r1, 50
    jnz  loop
    hlt
)";

// ------------------------------------------------------------ bucket mapping

TEST(HeatProfile, BucketMappingCoversSlotsAndCodes) {
  EXPECT_EQ(obs::HeatProfile::bucket_for(0), 0u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(17), 17u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckDenied), 18u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckUnprotected), 19u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckImplicitSelf), 20u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckOsWindow), 21u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckUnclassified), 22u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(sim::kCheckNoPolicy), 23u);
  // Foreign codes fold into "unclassified" instead of indexing out of bounds.
  EXPECT_EQ(obs::HeatProfile::bucket_for(18), 22u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(-7), 22u);
  EXPECT_EQ(obs::HeatProfile::bucket_for(1000), 22u);
  EXPECT_EQ(obs::HeatProfile::bucket_name(0), "slot0");
  EXPECT_EQ(obs::HeatProfile::bucket_name(18), "denied");
  EXPECT_EQ(obs::HeatProfile::bucket_name(23), "no-policy");
}

// ------------------------------------------------------- exact accounting

TEST(HeatRecorder, BlockAndOpcodeCountsSumToInstructionsExecuted) {
  sim::Machine machine;
  machine.enable_heat();
  load_bare(machine, assemble(kLoopTask));
  EXPECT_EQ(machine.run(10'000), sim::HaltReason::kHltInstruction);
  machine.heat()->flush();
  const obs::HeatProfile& profile = machine.heat()->profile();

  std::uint64_t block_sum = 0;
  for (const auto& [start, block] : profile.blocks) {
    block_sum += block.instructions;
    EXPECT_GT(block.end, start);
    EXPECT_GT(block.entries, 0u);
  }
  EXPECT_EQ(block_sum, machine.instructions_executed());
  EXPECT_EQ(profile.total_instructions(), machine.instructions_executed());
  // The loop body dominates: the hottest block alone covers >= 90%.
  std::uint64_t hottest = 0;
  for (const auto& [start, block] : profile.blocks) {
    hottest = std::max(hottest, block.instructions);
  }
  EXPECT_GE(hottest * 10, block_sum * 9);
}

TEST(HeatRecorder, FlushIsIdempotent) {
  sim::Machine machine;
  machine.enable_heat();
  load_bare(machine, assemble(kLoopTask));
  EXPECT_EQ(machine.run(10'000), sim::HaltReason::kHltInstruction);
  machine.heat()->flush();
  const std::uint64_t once = machine.heat()->profile().total_instructions();
  machine.heat()->flush();
  std::uint64_t block_sum = 0;
  for (const auto& [start, block] : machine.heat()->profile().blocks) {
    block_sum += block.instructions;
  }
  EXPECT_EQ(machine.heat()->profile().total_instructions(), once);
  EXPECT_EQ(block_sum, once);
}

TEST(HeatRecorder, StaticLeadersSplitFallthroughBlocks) {
  // Straight-line code: without leaders it is one runtime block; a leader in
  // the middle must split it exactly there.
  const auto object = assemble(R"(
      .entry main
  main:
      addi r1, 1
      addi r1, 1
      addi r1, 1
      addi r1, 1
      hlt
  )");
  sim::Machine machine;
  machine.enable_heat();
  machine.heat()->add_leaders(kBase, {0, 8});  // main and main+8
  load_bare(machine, object);
  EXPECT_EQ(machine.run(1'000), sim::HaltReason::kHltInstruction);
  machine.heat()->flush();
  const auto& blocks = machine.heat()->profile().blocks;
  ASSERT_EQ(blocks.size(), 2u);
  ASSERT_TRUE(blocks.contains(kBase));
  ASSERT_TRUE(blocks.contains(kBase + 8));
  EXPECT_EQ(blocks.at(kBase).end, kBase + 8);
  EXPECT_EQ(blocks.at(kBase).instructions, 2u);
  EXPECT_EQ(blocks.at(kBase + 8).instructions, 3u);  // two addi + hlt
}

// --------------------------------------------------- zero simulated cost

TEST(HeatMachine, ObservatoryNeverChangesSimulatedState) {
  const auto object = assemble(kLoopTask);
  sim::Machine plain;
  sim::Machine observed;
  observed.enable_heat();
  load_bare(plain, object);
  load_bare(observed, object);
  EXPECT_EQ(plain.run(10'000), observed.run(10'000));
  EXPECT_EQ(plain.cycles(), observed.cycles());
  EXPECT_EQ(plain.instructions_executed(), observed.instructions_executed());
  EXPECT_EQ(plain.cpu().regs, observed.cpu().regs);
  EXPECT_EQ(plain.cpu().eip, observed.cpu().eip);
}

TEST(HeatMachine, PlatformRunIdenticalWithHeatEnabled) {
  auto run = [](bool heat) {
    core::Platform platform;
    if (heat) {
      platform.machine().enable_heat();
    }
    EXPECT_TRUE(platform.boot().is_ok());
    auto task = platform.load_task_source(kLoopTask, {.name = "loop"});
    EXPECT_TRUE(task.is_ok()) << task.status().to_string();
    platform.run_for(200'000);
    return std::pair<std::uint64_t, std::uint64_t>(
        platform.machine().cycles(), platform.machine().instructions_executed());
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------------- classify() vs allows()

TEST(HeatEaMpu, ClassifyAgreesWithAllowsEverywhere) {
  hw::EaMpu mpu;
  // Two exec regions, one protected data slot, one os-accessible slot, one
  // background rule — every classify() path is reachable.
  ASSERT_TRUE(mpu.add_exec_region({0x1000, 0x100, 0x1000}).is_ok());
  ASSERT_TRUE(mpu.add_exec_region({0x2000, 0x100, 0x2000}).is_ok());
  ASSERT_TRUE(mpu.write_slot(0, {.code_start = 0x1000,
                                 .code_size = 0x100,
                                 .data_start = 0x8000,
                                 .data_size = 0x100,
                                 .perms = hw::kPermRead | hw::kPermWrite})
                  .is_ok());
  ASSERT_TRUE(mpu.write_slot(3, {.code_start = 0x2000,
                                 .code_size = 0x100,
                                 .data_start = 0x8000,
                                 .data_size = 0x80,
                                 .perms = hw::kPermRead,
                                 .os_accessible = true})
                  .is_ok());
  ASSERT_TRUE(mpu.write_slot(7, {.code_start = 0x1000,
                                 .code_size = 0x100,
                                 .data_start = 0x0,
                                 .data_size = 0xFFFF'0000,
                                 .perms = hw::kPermRead,
                                 .background = true})
                  .is_ok());

  const std::uint32_t ips[] = {0x1000, 0x1040, 0x2000, 0x3000,
                               sim::kFwOsKernel, sim::kFwOsKernel + 4};
  const sim::Access kinds[] = {sim::Access::kRead, sim::Access::kWrite,
                               sim::Access::kExecute};
  std::size_t checked = 0;
  bool saw_slot = false;
  bool saw_os_window = false;
  bool saw_implicit_self = false;
  for (const std::uint32_t ip : ips) {
    for (std::uint32_t addr = 0x0; addr < 0x9000; addr += 0x20) {
      for (const sim::Access access : kinds) {
        const bool allowed = mpu.allows(ip, addr, access);
        const int code = mpu.classify(ip, addr, access);
        EXPECT_EQ(allowed, code != sim::kCheckDenied)
            << std::hex << "ip=" << ip << " addr=" << addr << " access="
            << sim::access_name(access) << " code=" << std::dec << code;
        saw_slot = saw_slot || code >= 0;
        saw_os_window = saw_os_window || code == sim::kCheckOsWindow;
        saw_implicit_self = saw_implicit_self || code == sim::kCheckImplicitSelf;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u);
  EXPECT_TRUE(saw_slot);           // the sweep reached a granting slot
  EXPECT_TRUE(saw_os_window);      // ... the OS-window grant
  EXPECT_TRUE(saw_implicit_self);  // ... and the self-region fast path
}

TEST(HeatMachine, MpuCheckCountersSplitByRule) {
  core::Platform platform;
  platform.machine().enable_heat();
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kLoopTask, {.name = "loop"});
  ASSERT_TRUE(task.is_ok());
  platform.run_for(100'000);
  platform.machine().heat()->flush();
  const obs::HeatProfile& profile = platform.machine().heat()->profile();
  // Every fetch goes through the choke point: execute checks dominate.
  const auto kExec = static_cast<std::size_t>(sim::Access::kExecute);
  std::uint64_t exec_checks = 0;
  for (const std::uint64_t count : profile.mpu[kExec]) {
    exec_checks += count;
  }
  EXPECT_GE(exec_checks, platform.machine().instructions_executed());
  EXPECT_GT(profile.total_checks(), 0u);
  // A booted platform runs tasks inside their own exec regions: the
  // implicit-self bucket must be hot.
  const std::size_t self_bucket =
      obs::HeatProfile::bucket_for(sim::kCheckImplicitSelf);
  EXPECT_GT(profile.mpu[kExec][self_bucket], 0u);
}

// ------------------------------------- dynamic edges vs static resolution

TEST(HeatEdges, DynamicEdgesSubsetOfResolvedTargetsOverCorpus) {
  const std::filesystem::path dir(TYTAN_ASM_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t programs = 0;
  std::uint64_t edges_checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".s") {
      continue;
    }
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::stringstream text;
    text << in.rdbuf();
    const auto object = assemble(text.str());
    const analysis::Analysis full = analysis::analyze_full(object);
    for (std::uint32_t r1 = 0; r1 < 8; ++r1) {
      sim::Machine machine;
      machine.enable_heat();
      load_bare(machine, object);
      machine.cpu().regs[1] = r1;
      machine.run(50'000);
      machine.heat()->flush();
      for (const auto& [key, edge] : machine.heat()->profile().edges) {
        const auto site = static_cast<std::uint32_t>(key >> 32) - kBase;
        const auto target = static_cast<std::uint32_t>(key & 0xFFFF'FFFFu) - kBase;
        const auto it = full.dataflow.resolved.find(site);
        if (it == full.dataflow.resolved.end()) {
          continue;  // the analyzer made no claim about this site
        }
        EXPECT_NE(std::find(it->second.begin(), it->second.end(), target),
                  it->second.end())
            << entry.path().filename() << ": recorded edge " << std::hex << site
            << " -> " << target << " (r1=" << std::dec << r1
            << ") is outside the statically resolved set";
        ++edges_checked;
      }
    }
    ++programs;
  }
  EXPECT_GE(programs, 5u);
  EXPECT_GT(edges_checked, 0u);
}

// --------------------------------------------------------- registry + merge

TEST(HeatProfile, MergeAddsCountersAndConcatenatesRegions) {
  obs::HeatProfile a;
  obs::HeatProfile b;
  a.blocks[0x100] = {0x110, 2, 8};
  b.blocks[0x100] = {0x120, 1, 4};  // same start, longer end
  b.blocks[0x200] = {0x210, 5, 5};
  a.opcodes[0x37].count = 10;
  b.opcodes[0x37].count = 7;
  b.opcodes[0x37].ns_total = 140;
  b.opcodes[0x37].ns_samples = 2;
  a.mpu[0][18] = 3;
  b.mpu[0][18] = 4;
  a.edges[obs::HeatProfile::edge_key(0x10, 0x20)] = {2, false};
  b.edges[obs::HeatProfile::edge_key(0x10, 0x20)] = {3, false};
  b.edges[obs::HeatProfile::edge_key(0x30, 0x40)] = {1, true};
  a.regions.push_back({0, "alpha", 0x100, 0x100});
  b.regions.push_back({1, "beta", 0x200, 0x100});

  a.merge(b);
  EXPECT_EQ(a.blocks.at(0x100).end, 0x120u);
  EXPECT_EQ(a.blocks.at(0x100).entries, 3u);
  EXPECT_EQ(a.blocks.at(0x100).instructions, 12u);
  EXPECT_EQ(a.blocks.at(0x200).entries, 5u);
  EXPECT_EQ(a.opcodes[0x37].count, 17u);
  EXPECT_EQ(a.opcodes[0x37].ns_total, 140u);
  EXPECT_EQ(a.opcodes[0x37].ns_samples, 2u);
  EXPECT_EQ(a.mpu[0][18], 7u);
  EXPECT_EQ(a.edges.at(obs::HeatProfile::edge_key(0x10, 0x20)).count, 5u);
  EXPECT_TRUE(a.edges.at(obs::HeatProfile::edge_key(0x30, 0x40)).is_call);
  ASSERT_EQ(a.regions.size(), 2u);
  EXPECT_EQ(a.regions[1].name, "beta");
}

TEST(HeatProfile, RegistryMergeFoldsProfilesAbsentFromDestination) {
  obs::MetricsRegistry dst;
  obs::MetricsRegistry src;
  src.heat_profile("machine").opcodes[1].count = 42;
  src.heat_profile("other").blocks[0x50] = {0x60, 1, 4};
  dst.merge_from(src);
  ASSERT_NE(dst.find_heat_profile("machine"), nullptr);
  ASSERT_NE(dst.find_heat_profile("other"), nullptr);
  EXPECT_EQ(dst.find_heat_profile("machine")->opcodes[1].count, 42u);
  EXPECT_EQ(dst.find_heat_profile("other")->blocks.at(0x50).instructions, 4u);
  // Merging again doubles the counters (add semantics, not overwrite).
  dst.merge_from(src);
  EXPECT_EQ(dst.find_heat_profile("machine")->opcodes[1].count, 84u);
}

// ------------------------------------------------------------ fleet folding

TEST(HeatFleet, AggregationByteIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    fleet::WorkloadConfig config;
    config.fleet.device_count = 4;
    config.fleet.threads = threads;
    config.fleet.heat = true;
    config.cycles = 150'000;
    fleet::Fleet fleet(config.fleet);
    const fleet::WorkloadResult result = run_verifier_workload(fleet, config);
    EXPECT_TRUE(result.all_verified());
    fleet.aggregate_metrics();
    const obs::HeatProfile* profile = fleet.metrics().find_heat_profile("machine");
    EXPECT_NE(profile, nullptr);
    // Deterministic export only — host-ns fields are excluded (and fleet
    // devices never time dispatches anyway).
    return profile == nullptr ? std::string()
                              : profile->to_jsonl(/*include_host_ns=*/false);
  };
  const std::string serial = run(1);
  const std::string threaded = run(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

// ------------------------------------------------------------ serialization

TEST(HeatJsonl, RoundTripsThroughParser) {
  obs::HeatProfile profile;
  profile.blocks[0x40000] = {0x40010, 3, 12};
  profile.blocks[0x40010] = {0x40020, 2, 8};
  profile.opcodes[0x05].count = 12;
  profile.opcodes[0x05].ns_total = 960;
  profile.opcodes[0x05].ns_samples = 3;
  profile.opcodes[0x37].count = 8;
  profile.mpu[0][0] = 5;
  profile.mpu[2][20] = 99;
  profile.edges[obs::HeatProfile::edge_key(0x40008, 0x40010)] = {8, false};
  profile.regions.push_back({2, "task \"quoted\"", 0x40000, 0x100});

  const obs::OpcodeNamer namer = [](std::uint8_t op) {
    return op == 0x05 ? std::string("addi") : std::string("jmpr");
  };
  const std::string jsonl = profile.to_jsonl(/*include_host_ns=*/true, namer);
  auto parsed = obs::parse_heat_jsonl(jsonl);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->schema, obs::HeatProfile::kSchemaVersion);
  const obs::HeatProfile& back = parsed->profile;
  EXPECT_EQ(back.blocks.size(), 2u);
  EXPECT_EQ(back.blocks.at(0x40000).instructions, 12u);
  EXPECT_EQ(back.opcodes[0x05].count, 12u);
  EXPECT_EQ(back.opcodes[0x05].ns_total, 960u);
  EXPECT_EQ(back.opcodes[0x05].ns_samples, 3u);
  EXPECT_EQ(back.opcodes[0x37].count, 8u);
  EXPECT_EQ(back.mpu[0][0], 5u);
  EXPECT_EQ(back.mpu[2][20], 99u);
  EXPECT_EQ(back.edges.at(obs::HeatProfile::edge_key(0x40008, 0x40010)).count, 8u);
  ASSERT_EQ(back.regions.size(), 1u);
  EXPECT_EQ(back.regions[0].name, "task \"quoted\"");
  EXPECT_EQ(parsed->opcode_name(0x05), "addi");
  EXPECT_EQ(parsed->opcode_name(0x37), "jmpr");
  // Re-serializing the parsed profile reproduces the bytes.
  const obs::OpcodeNamer reparse_namer = [log = *parsed](std::uint8_t op) {
    return log.opcode_name(op);
  };
  EXPECT_EQ(back.to_jsonl(true, reparse_namer), jsonl);
}

TEST(HeatJsonl, DeterministicExportExcludesHostNanoseconds) {
  obs::HeatProfile profile;
  profile.opcodes[0x05].count = 4;
  profile.opcodes[0x05].ns_total = 123456;
  profile.opcodes[0x05].ns_samples = 2;
  const std::string deterministic = profile.to_jsonl(/*include_host_ns=*/false);
  EXPECT_EQ(deterministic.find("ns_total"), std::string::npos);
  EXPECT_EQ(deterministic.find("ns_samples"), std::string::npos);
  EXPECT_NE(profile.to_jsonl(true).find("ns_total"), std::string::npos);
}

TEST(HeatJsonl, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(obs::parse_heat_jsonl(
                   R"({"type":"heat-header","schema":999,"instructions":0})")
                   .is_ok());
  EXPECT_FALSE(obs::parse_heat_jsonl(R"({"type":"mystery"})").is_ok());
  EXPECT_FALSE(
      obs::parse_heat_jsonl(R"({"type":"opcode","op":999,"count":1})").is_ok());
  EXPECT_FALSE(obs::parse_heat_jsonl(
                   R"({"type":"mpu","access":"levitate","rule":"slot0","count":1})")
                   .is_ok());
}

TEST(HeatJsonl, FoldedOutputSortsRegionPrefixedBlocks) {
  obs::HeatProfile profile;
  profile.regions.push_back({0, "taskA", 0x1000, 0x100});
  profile.blocks[0x1000] = {0x1010, 1, 6};
  profile.blocks[0x5000] = {0x5010, 1, 2};  // unattributed -> "?"
  const std::string folded = profile.folded();
  EXPECT_NE(folded.find("taskA;block_0x1000 6"), std::string::npos);
  EXPECT_NE(folded.find("?;block_0x5000 2"), std::string::npos);
}

// --------------------------------------------------- loader leader wiring

TEST(HeatLoader, LoadRegistersRegionAndStaticLeaders) {
  core::Platform platform;
  platform.machine().enable_heat();
  ASSERT_TRUE(platform.boot().is_ok());
  std::ifstream in(std::filesystem::path(TYTAN_ASM_DIR) / "jump_table.s");
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  auto task = platform.load_task_source(text.str(), {.name = "jump_table"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_for(100'000);
  platform.machine().heat()->flush();
  const obs::HeatProfile& profile = platform.machine().heat()->profile();
  bool named = false;
  for (const auto& region : profile.regions) {
    named = named || region.name == "jump_table";
  }
  EXPECT_TRUE(named);
  // The computed jump recorded dynamic edges.
  EXPECT_FALSE(profile.edges.empty());
  // And blocks land inside the named region.
  std::uint64_t in_region = 0;
  for (const auto& [start, block] : profile.blocks) {
    if (profile.region_name(start) == "jump_table") {
      in_region += block.instructions;
    }
  }
  EXPECT_GT(in_region, 0u);
}

}  // namespace
}  // namespace tytan
