// Secure IPC: delivery, implicit sender authentication, mailbox protection,
// shared-memory grants (paper §3/§4).
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

constexpr std::string_view kReceiver = R"(
    .secure
    .stack 256
    .entry main
    .msg on_msg
main:
    movi r0, 8            ; kSysWaitMsg: park until a message arrives
    int  0x21
hang:
    jmp  hang
on_msg:
    li   r5, __tytan_mailbox
    ldw  r1, [r5+8]       ; message word 0
    movi r0, 4            ; kSysPutchar
    int  0x21
    movi r0, 9            ; kSysMsgDone
    int  0x21
hang2:
    jmp  hang2
)";

/// Sender: loads id_R from its data section (provisioned by the test — the
/// paper leaves id_R provisioning to the task developer), sends one message,
/// then yields forever.  `op` selects sync (0) or async (1).
std::string sender_source(unsigned op, unsigned payload) {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    li   r5, idr
    ldw  r1, [r5]
    ldw  r2, [r5+4]
    movi r0, )" + std::to_string(op) + R"(
    movi r3, )" + std::to_string(payload) + R"(
    movi r4, 0x22
    movi r5, 0x33
    movi r6, 0x44
    int  0x22
spin:
    movi r0, 1
    int  0x21
    jmp  spin
idr:
    .word 0, 0
)";
}

/// Provision the sender's `idr` words with the receiver's identity (host
/// plays the task developer / deployment tooling).
void provision_receiver_id(Platform& platform, rtos::TaskHandle sender,
                           rtos::TaskHandle receiver) {
  const rtos::Tcb* s = platform.scheduler().get(sender);
  const rtos::Tcb* r = platform.scheduler().get(receiver);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(r, nullptr);
  auto object = isa::assemble(sender_source(1, 0));
  ASSERT_TRUE(object.is_ok());
  const std::uint32_t idr_addr = s->region_base + object->symbols.at("idr");
  platform.machine().memory().write32(idr_addr, load_le32(r->identity.data()));
  platform.machine().memory().write32(idr_addr + 4, load_le32(r->identity.data() + 4));
}

class IpcTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IpcTest, MessageDeliveredWithAuthenticatedSender) {
  const unsigned op = GetParam();  // 0 = sync, 1 = async
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver", .priority = 2});
  ASSERT_TRUE(receiver.is_ok());
  auto sender =
      platform.load_task_source(sender_source(op, 'M'), {.name = "sender", .priority = 2,
                                                         .auto_start = false});
  ASSERT_TRUE(sender.is_ok());
  provision_receiver_id(platform, *sender, *receiver);
  ASSERT_TRUE(platform.resume_task(*sender).is_ok());

  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000))
      << "message never processed";
  EXPECT_EQ(platform.serial().output(), "M");
  EXPECT_EQ(platform.ipc_proxy().messages_delivered(), 1u);

  // The mailbox carries the *registry* identity of the sender — authenticated
  // by hardware origin, not sender-supplied.
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  const rtos::Tcb* s = platform.scheduler().get(*sender);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(s, nullptr);
  auto id_lo = platform.machine().fw_read32(core::Rtm::kIdent, r->mailbox);
  auto id_hi = platform.machine().fw_read32(core::Rtm::kIdent, r->mailbox + 4);
  ASSERT_TRUE(id_lo.is_ok());
  ASSERT_TRUE(id_hi.is_ok());
  EXPECT_EQ(*id_lo, load_le32(s->identity.data()));
  EXPECT_EQ(*id_hi, load_le32(s->identity.data() + 4));
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, IpcTest, ::testing::Values(0u, 1u));

TEST(Ipc, UnknownReceiverRejected) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto sender = platform.load_task_source(sender_source(1, 'X'), {.name = "sender"});
  ASSERT_TRUE(sender.is_ok());
  // idr stays zero — no task has the all-zero identity.
  platform.run_for(3'000'000);
  EXPECT_EQ(platform.ipc_proxy().messages_delivered(), 0u);
  EXPECT_GE(platform.ipc_proxy().messages_rejected(), 1u);
}

TEST(Ipc, MailboxWritableOnlyByProxy) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver"});
  ASSERT_TRUE(receiver.is_ok());
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  auto& machine = platform.machine();
  // The proxy can write the mailbox; the OS and other identities cannot.
  EXPECT_TRUE(machine.fw_write32(core::IpcProxy::kIdent, r->mailbox, 1).is_ok());
  EXPECT_EQ(machine.fw_write32(sim::kFwOsKernel, r->mailbox, 1).code(),
            Err::kPermissionDenied);
  EXPECT_EQ(machine.fw_write32(sim::kFwRemoteAttest, r->mailbox, 1).code(),
            Err::kPermissionDenied);
}

TEST(Ipc, HostDeliverRoute) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver"});
  ASSERT_TRUE(receiver.is_ok());
  platform.run_for(200'000);  // let the receiver park in wait-msg

  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  rtos::TaskIdentity service_id{};  // a platform service (all-zero identity)
  ASSERT_TRUE(platform.ipc_proxy()
                  .deliver(service_id, r->identity, {'H', 0, 0, 0}, /*sync=*/false)
                  .is_ok());
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 10'000'000));
  EXPECT_EQ(platform.serial().output(), "H");
}

TEST(Ipc, SharedMemoryGrantConfiguresExactlyTwoRules) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver"});
  auto sender = platform.load_task_source(sender_source(core::kIpcShmGrant, 256),
                                          {.name = "sender", .auto_start = false});
  ASSERT_TRUE(receiver.is_ok());
  ASSERT_TRUE(sender.is_ok());
  provision_receiver_id(platform, *sender, *receiver);
  ASSERT_TRUE(platform.resume_task(*sender).is_ok());

  const std::size_t slots_before = platform.mpu().slots_in_use();
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.ipc_proxy().grants().empty(); }, 20'000'000));
  EXPECT_EQ(platform.mpu().slots_in_use(), slots_before + 2);

  const auto& grant = platform.ipc_proxy().grants().front();
  const rtos::Tcb* s = platform.scheduler().get(*sender);
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  auto& mpu = platform.mpu();
  // Both endpoints can use the window; the OS and third parties cannot.
  EXPECT_TRUE(mpu.allows(s->region_base + 4, grant.base, sim::Access::kWrite));
  EXPECT_TRUE(mpu.allows(r->region_base + 4, grant.base, sim::Access::kRead));
  EXPECT_FALSE(mpu.allows(sim::kFwOsKernel + 4, grant.base, sim::Access::kRead));

  // Releasing the grant frees both slots and the memory.
  ASSERT_TRUE(platform.ipc_proxy().release_grant(grant.base).is_ok());
  EXPECT_EQ(platform.mpu().slots_in_use(), slots_before);
}

TEST(Ipc, StatsNearPaperNumbers) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver", .priority = 2});
  auto sender = platform.load_task_source(sender_source(0, 'Z'),
                                          {.name = "sender", .priority = 2,
                                           .auto_start = false});
  ASSERT_TRUE(receiver.is_ok());
  ASSERT_TRUE(sender.is_ok());
  provision_receiver_id(platform, *sender, *receiver);
  ASSERT_TRUE(platform.resume_task(*sender).is_ok());
  ASSERT_TRUE(
      platform.run_until([&] { return platform.ipc_proxy().last_ipc().delivered; },
                         20'000'000));
  const auto& stats = platform.ipc_proxy().last_ipc();
  // Paper: proxy 1,208 cycles, receiver entry 116 — same order of magnitude.
  EXPECT_GT(stats.proxy, 500u);
  EXPECT_LT(stats.proxy, 3'000u);
  EXPECT_GE(stats.entry, platform.machine().costs().ipc_receiver_entry);
}


TEST(Ipc, NormalSenderIsUnauthenticated) {
  // A normal task may send, but it has no RTM identity: the proxy writes the
  // all-zero sender id, so the receiver can tell the request is anonymous.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver", .priority = 2});
  ASSERT_TRUE(receiver.is_ok());
  std::string normal_sender = sender_source(1, 'U');
  normal_sender.erase(normal_sender.find("    .secure\n"), 12);
  auto sender = platform.load_task_source(normal_sender, {.name = "anon", .priority = 2,
                                                          .auto_start = false});
  ASSERT_TRUE(sender.is_ok()) << sender.status().to_string();
  // Provision id_R (layout differs from the secure variant: no prologue).
  const rtos::Tcb* s = platform.scheduler().get(*sender);
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  auto probe = isa::assemble(normal_sender);
  const std::uint32_t idr = s->region_base + probe->symbols.at("idr");
  platform.machine().memory().write32(idr, load_le32(r->identity.data()));
  platform.machine().memory().write32(idr + 4, load_le32(r->identity.data() + 4));
  ASSERT_TRUE(platform.resume_task(*sender).is_ok());

  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000));
  EXPECT_EQ(platform.serial().output(), "U");
  auto id_lo = platform.machine().fw_read32(core::Rtm::kIdent, r->mailbox);
  auto id_hi = platform.machine().fw_read32(core::Rtm::kIdent, r->mailbox + 4);
  ASSERT_TRUE(id_lo.is_ok());
  EXPECT_EQ(*id_lo, 0u);  // anonymous
  EXPECT_EQ(*id_hi, 0u);
}

TEST(Ipc, SenderCannotForgeItsIdentity) {
  // Even if the sender loads a victim identity into its registers, the proxy
  // derives id_S from the hardware interrupt origin — the mailbox shows the
  // sender's true identity, not anything it supplied.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver", .priority = 2});
  ASSERT_TRUE(receiver.is_ok());
  // The ABI has no "claimed sender id" field at all — which IS the defense:
  // the only sender identity that exists is the proxy-derived one.  Verify
  // that the mailbox identity matches the registry entry for the sender's
  // code region.
  auto sender = platform.load_task_source(sender_source(1, 'F'),
                                          {.name = "forger", .priority = 2,
                                           .auto_start = false});
  ASSERT_TRUE(sender.is_ok());
  provision_receiver_id(platform, *sender, *receiver);
  ASSERT_TRUE(platform.resume_task(*sender).is_ok());
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000));
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  const core::RegistryEntry* truth = platform.rtm().find_by_handle(*sender);
  ASSERT_NE(truth, nullptr);
  auto id_lo = platform.machine().fw_read32(core::Rtm::kIdent, r->mailbox);
  ASSERT_TRUE(id_lo.is_ok());
  EXPECT_EQ(*id_lo, load_le32(truth->identity.data()));
}

}  // namespace
}  // namespace tytan
