// Platform-level tests: secure boot, static protections, and end-to-end
// guest execution under the booted policy.
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

TEST(SecureBoot, BootSucceedsAndReportsComponents) {
  Platform platform;
  auto report = platform.boot();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->ok);
  EXPECT_EQ(report->components.size(), 7u);
  for (const auto& component : report->components) {
    EXPECT_TRUE(component.verified) << component.name;
  }
  // Sum of TyTAN component footprints = the paper's Table 8 overhead.
  EXPECT_EQ(report->trusted_bytes, 249'943u - 215'617u);
}

TEST(SecureBoot, DoubleBootRejected) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto second = platform.boot();
  EXPECT_FALSE(second.is_ok());
}

TEST(SecureBoot, TamperedFirmwareFailsVerification) {
  Platform platform;
  // Corrupt one byte of the RTM image between load and verify by driving the
  // boot ROM manually on a fresh platform.
  auto& machine = platform.machine();
  core::SecureBootRom rom(machine, platform.mpu());
  auto manifest = core::default_manifest();
  rom.load_images(manifest);
  machine.memory().write8(sim::kFwRtm + 100, machine.memory().read8(sim::kFwRtm + 100) ^ 1);
  auto report = rom.verify_and_lock(manifest);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->ok);
  EXPECT_TRUE(machine.halted());
}

TEST(StaticProtection, OsCannotWriteRtmRegistry) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& machine = platform.machine();
  const Status s = machine.fw_write32(sim::kFwOsKernel, core::kRtmRegistryBase, 0xdead);
  EXPECT_EQ(s.code(), Err::kPermissionDenied);
  // The RTM itself may write.
  EXPECT_TRUE(machine.fw_write32(sim::kFwRtm, core::kRtmRegistryBase, 0).is_ok());
}

TEST(StaticProtection, OsCannotReadShadowTcbsOrPlatformKey) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& machine = platform.machine();
  EXPECT_EQ(machine.fw_read32(sim::kFwOsKernel, core::kShadowTcbBase).status().code(),
            Err::kPermissionDenied);
  EXPECT_EQ(machine.fw_read32(sim::kFwOsKernel, sim::kMmioKeyReg).status().code(),
            Err::kPermissionDenied);
  // Only Remote Attest and Secure Storage may read Kp.
  EXPECT_TRUE(machine.fw_read32(sim::kFwRemoteAttest, sim::kMmioKeyReg).is_ok());
  EXPECT_TRUE(machine.fw_read32(sim::kFwSecureStorage, sim::kMmioKeyReg).is_ok());
  EXPECT_EQ(machine.fw_read32(sim::kFwIpcProxy, sim::kMmioKeyReg).status().code(),
            Err::kPermissionDenied);
}

TEST(StaticProtection, IdtIsLockedAfterBoot) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& machine = platform.machine();
  // Nobody — not even trusted components — may rewrite interrupt vectors.
  EXPECT_EQ(machine.fw_write32(sim::kFwOsKernel, sim::kIdtBase, 0xbad).code(),
            Err::kPermissionDenied);
  EXPECT_EQ(machine.fw_write32(sim::kFwIntMux, sim::kIdtBase, 0xbad).code(),
            Err::kPermissionDenied);
}

TEST(Platform, IdleRunsWhenNoTasksLoaded) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  const auto reason = platform.run_for(500'000);
  EXPECT_EQ(reason, sim::HaltReason::kCycleLimit);
  // Ticks arrived at roughly cycles / tick_period.
  EXPECT_GE(platform.kernel().tick_count(), 8u);
}


TEST(Platform, InstancesAreFullyIndependent) {
  // No hidden global state: two platforms boot, run, and diverge without
  // affecting each other (required for fleet simulations and parallel tests).
  Platform a;
  Platform b;
  ASSERT_TRUE(a.boot().is_ok());
  ASSERT_TRUE(b.boot().is_ok());
  auto task = a.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r0, 4
      movi r1, 120
      int  0x21
      movi r0, 3
      int  0x21
  )", {.name = "only-on-a"});
  ASSERT_TRUE(task.is_ok());
  a.run_for(2'000'000);
  b.run_for(500'000);
  EXPECT_EQ(a.serial().output(), "x");
  EXPECT_TRUE(b.serial().output().empty());
  EXPECT_EQ(b.rtm().entries().size(), 0u);
  EXPECT_NE(a.machine().cycles(), b.machine().cycles());
}

TEST(Platform, DeterministicAcrossRuns) {
  // Identical inputs produce identical cycle-level behaviour — the property
  // EXPERIMENTS.md's "deterministic" claim rests on.
  auto run_once = [] {
    Platform platform;
    EXPECT_TRUE(platform.boot().is_ok());
    auto task = platform.load_task_source(R"(
        .secure
        .stack 128
        .entry main
    main:
        addi r5, 1
        movi r0, 1
        int  0x21
        jmp  main
    )", {.name = "det"});
    EXPECT_TRUE(task.is_ok());
    platform.run_for(3'000'000);
    return std::tuple{platform.machine().cycles(),
                      platform.machine().instructions_executed(),
                      platform.scheduler().get(*task)->activations,
                      platform.scheduler().get(*task)->cpu_cycles};
  };
  EXPECT_EQ(run_once(), run_once());
}

// End-to-end: a secure guest task runs under the booted policy, reads the
// pedal sensor over MMIO, and prints through the serial syscall.
TEST(Platform, SecureTaskRunsAndUsesSyscalls) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  platform.pedal().set_value(42);

  constexpr std::string_view kSource = R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, 0x100200       ; pedal sensor MMIO
      ldw  r3, [r2]           ; read pedal position (42)
      movi r0, 4              ; kSysPutchar
      mov  r1, r3
      addi r1, 33             ; 42 + 33 = 'K'
      int  0x21
      movi r0, 3              ; kSysExit
      int  0x21
  hang:
      jmp  hang
  )";
  auto task = platform.load_task_source(kSource, {.name = "sensor"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();

  platform.run_until([&] { return !platform.serial().output().empty(); }, 2'000'000);
  EXPECT_EQ(platform.serial().output(), "K");
  // The task exited and unloaded itself.
  platform.run_for(10'000);
  EXPECT_EQ(platform.scheduler().get(*task), nullptr);
}

TEST(Platform, NormalTaskRunsUnderOsControl) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());

  constexpr std::string_view kSource = R"(
      .stack 128
      .entry main
  main:
      movi r0, 4
      movi r1, 'n'            ; unsupported char literal -> use number below
      int  0x21
      movi r0, 3
      int  0x21
  )";
  // Replace the char literal with a number (the assembler takes numbers only).
  std::string source(kSource);
  const auto pos = source.find("'n'");
  source.replace(pos, 3, "110");
  auto task = platform.load_task_source(source, {.name = "normal"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_until([&] { return !platform.serial().output().empty(); }, 2'000'000);
  EXPECT_EQ(platform.serial().output(), "n");
}

}  // namespace
}  // namespace tytan
