// Secure storage binding (Kt = HMAC(id_t | Kp)) and local/remote attestation.
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;
using core::RemoteAttest;

rtos::TaskIdentity make_id(std::uint8_t seed) {
  rtos::TaskIdentity id{};
  id.fill(seed);
  return id;
}

// ---------------------------------------------------------------------------
// Secure storage, host API
// ---------------------------------------------------------------------------

TEST(SecureStorage, RoundTripSameIdentity) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  const ByteVec data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(storage.store(make_id(0xAA), 0, data).is_ok());
  auto back = storage.load(make_id(0xAA), 0);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, data);
}

TEST(SecureStorage, DifferentIdentityCannotAccess) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  ASSERT_TRUE(storage.store(make_id(0xAA), 0, ByteVec{1, 2, 3}).is_ok());
  EXPECT_FALSE(storage.load(make_id(0xBB), 0).is_ok());
}

TEST(SecureStorage, TaskKeysDifferPerIdentityAndPlatform) {
  Platform p1;
  ASSERT_TRUE(p1.boot().is_ok());
  Platform::Config other_cfg;
  other_cfg.kp[0] ^= 0xFF;
  Platform p2(other_cfg);
  ASSERT_TRUE(p2.boot().is_ok());

  const auto k_a1 = p1.secure_storage().task_key(make_id(0xAA));
  const auto k_b1 = p1.secure_storage().task_key(make_id(0xBB));
  const auto k_a2 = p2.secure_storage().task_key(make_id(0xAA));
  EXPECT_NE(k_a1, k_b1);  // bound to the identity
  EXPECT_NE(k_a1, k_a2);  // bound to the platform
  EXPECT_EQ(k_a1, p1.secure_storage().task_key(make_id(0xAA)));  // deterministic
}

TEST(SecureStorage, ReStoreReplacesSlot) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  ASSERT_TRUE(storage.store(make_id(1), 3, ByteVec{1}).is_ok());
  ASSERT_TRUE(storage.store(make_id(1), 3, ByteVec{9, 9}).is_ok());
  auto back = storage.load(make_id(1), 3);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, (ByteVec{9, 9}));
  EXPECT_EQ(storage.blob_count(), 1u);
}

TEST(SecureStorage, SlotsAreIndependent) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  ASSERT_TRUE(storage.store(make_id(1), 0, ByteVec{0xA}).is_ok());
  ASSERT_TRUE(storage.store(make_id(1), 1, ByteVec{0xB}).is_ok());
  EXPECT_EQ((*storage.load(make_id(1), 0))[0], 0xA);
  EXPECT_EQ((*storage.load(make_id(1), 1))[0], 0xB);
}

TEST(SecureStorage, AreaExhaustionReported) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  const ByteVec big(2048, 0x42);
  Status last = Status::ok();
  for (int i = 0; i < 32 && last.is_ok(); ++i) {
    last = storage.store(make_id(1), static_cast<std::uint32_t>(i), big);
  }
  EXPECT_EQ(last.code(), Err::kOutOfMemory);
}

// ---------------------------------------------------------------------------
// Secure storage, guest syscall path: the paper's headline property — a
// reloaded instance of the *same binary* (same id_t) recovers its data; any
// other binary cannot.
// ---------------------------------------------------------------------------

constexpr std::string_view kSealTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r1, buf
    movi r2, 16          ; capacity
    movi r3, 5           ; slot
    movi r0, 11          ; kSysSealLoad
    int  0x21
    cmpi r0, -1
    jz   first_run
    li   r4, buf         ; data recovered: print its first byte
    ldb  r1, [r4]
    movi r0, 4
    int  0x21
    jmp  done
first_run:
    li   r1, data
    movi r2, 4
    movi r3, 5
    movi r0, 10          ; kSysSealStore
    int  0x21
    movi r1, 70          ; 'F' = first run, stored
    movi r0, 4
    int  0x21
done:
    movi r0, 3           ; kSysExit
    int  0x21
data:
    .word 0x00414243     ; bytes 'C','B','A',0 in memory
buf:
    .space 16
)";

TEST(SecureStorage, SurvivesReloadOfSameBinary) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());

  auto first = platform.load_task_source(kSealTask, {.name = "sealer"});
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(platform.run_until([&] { return platform.serial().output() == "F"; },
                                 30'000'000));
  // Task exited and unloaded itself; its memory is gone, the sealed blob is not.
  platform.run_for(200'000);
  ASSERT_EQ(platform.scheduler().get(*first), nullptr);
  EXPECT_EQ(platform.secure_storage().blob_count(), 1u);

  auto second = platform.load_task_source(kSealTask, {.name = "sealer2"});
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(platform.run_until([&] { return platform.serial().output() == "FC"; },
                                 30'000'000))
      << "output: " << platform.serial().output();
}

TEST(SecureStorage, DifferentBinaryCannotUnseal) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto first = platform.load_task_source(kSealTask, {.name = "sealer"});
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(platform.run_until([&] { return platform.serial().output() == "F"; },
                                 30'000'000));

  // A *modified* binary (different id_t) sees no blob and stores its own.
  std::string modified(kSealTask);
  modified.replace(modified.find("movi r1, 70"), 11, "movi r1, 71");  // prints 'G'
  auto second = platform.load_task_source(modified, {.name = "other"});
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(platform.run_until([&] { return platform.serial().output() == "FG"; },
                                 30'000'000))
      << "output: " << platform.serial().output();
}

// ---------------------------------------------------------------------------
// Attestation
// ---------------------------------------------------------------------------

constexpr std::string_view kAnyTask = R"(
    .secure
    .stack 128
    .entry main
main:
    movi r0, 1
    int  0x21
    jmp  main
)";

TEST(Attestation, RemoteReportVerifies) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kAnyTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  const rtos::TaskIdentity id = platform.scheduler().get(*task)->identity;

  const std::uint64_t nonce = 0x1122334455667788ull;
  auto report = platform.remote_attest().attest_task(*task, nonce);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  // Verifier side: Ka derived from the manufacturer's copy of Kp.
  const auto ka = RemoteAttest::derive_ka(platform.key_register().raw_key());
  EXPECT_TRUE(RemoteAttest::verify(ka, *report, nonce, id));
}

TEST(Attestation, RejectsWrongNonceIdentityOrMac) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kAnyTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  const rtos::TaskIdentity id = platform.scheduler().get(*task)->identity;
  auto report = platform.remote_attest().attest_task(*task, 42);
  ASSERT_TRUE(report.is_ok());
  const auto ka = RemoteAttest::derive_ka(platform.key_register().raw_key());

  EXPECT_FALSE(RemoteAttest::verify(ka, *report, 43, id));          // replayed nonce
  EXPECT_FALSE(RemoteAttest::verify(ka, *report, 42, make_id(9)));  // wrong task
  auto tampered = *report;
  tampered.mac[0] ^= 1;
  EXPECT_FALSE(RemoteAttest::verify(ka, tampered, 42, id));          // forged MAC
  auto lying = *report;
  lying.identity = make_id(9);
  EXPECT_FALSE(RemoteAttest::verify(ka, lying, 42, make_id(9)));     // swapped id
}

TEST(Attestation, DifferentPlatformKeyYieldsDifferentKa) {
  Platform p1;
  ASSERT_TRUE(p1.boot().is_ok());
  Platform::Config cfg;
  cfg.kp[5] ^= 0x80;
  Platform p2(cfg);
  ASSERT_TRUE(p2.boot().is_ok());
  auto t1 = p1.load_task_source(kAnyTask, {.name = "t", .auto_start = false});
  auto t2 = p2.load_task_source(kAnyTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(t1.is_ok());
  ASSERT_TRUE(t2.is_ok());
  auto r1 = p1.remote_attest().attest_task(*t1, 7);
  auto r2 = p2.remote_attest().attest_task(*t2, 7);
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r1->identity, r2->identity);  // same binary, same id_t
  EXPECT_NE(r1->mac, r2->mac);            // different device keys

  // A report from device 2 does not verify under device 1's Ka.
  const auto ka1 = RemoteAttest::derive_ka(p1.key_register().raw_key());
  EXPECT_FALSE(RemoteAttest::verify(ka1, *r2, 7, r2->identity));
}

TEST(Attestation, LocalAttestMatchesRegistry) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kAnyTask, {.name = "t", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  auto id = platform.remote_attest().local_attest(*task);
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(*id, platform.scheduler().get(*task)->identity);
  EXPECT_FALSE(platform.remote_attest().local_attest(9999).is_ok());
}

TEST(Attestation, ReportSerializationRoundTrip) {
  core::AttestationReport report;
  report.nonce = 77;
  report.identity = make_id(3);
  report.mac.fill(0x5c);
  auto parsed = core::AttestationReport::deserialize(report.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->nonce, 77u);
  EXPECT_EQ(parsed->identity, report.identity);
  EXPECT_EQ(parsed->mac, report.mac);
  EXPECT_FALSE(core::AttestationReport::deserialize(ByteVec(5)).is_ok());
}

}  // namespace
}  // namespace tytan
