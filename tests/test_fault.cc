// Fault injection & graceful degradation (src/fault): plan grammar, engine
// determinism, and the negative path for every fault class — each injection
// fires exactly once (deterministically) and each recovery restores a
// verifying device.  Also pins the storage accounting fixes that ride along:
// a failed store burns no seal nonce and charges no cycles, and a re-stored
// slot invalidates the superseded blob.
#include <gtest/gtest.h>

#include "core/platform.h"
#include "fault/fault.h"
#include "fleet/verifier_workload.h"
#include "obs/telemetry.h"

namespace tytan {
namespace {

using core::Platform;

fault::FaultPlan plan_of(const char* text) {
  auto plan = fault::FaultPlan::parse(text);
  EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
  return plan.is_ok() ? plan.take() : fault::FaultPlan{};
}

rtos::TaskIdentity make_id(std::uint8_t seed) {
  rtos::TaskIdentity id{};
  id.fill(seed);
  return id;
}

constexpr std::string_view kSecureSpinner = R"(
    .secure
    .stack 256
    .entry main
main:
    addi r6, 1
    movi r0, 2          ; kSysDelay
    movi r1, 3
    int  0x21
    jmp  main
)";

constexpr std::string_view kReceiver = R"(
    .secure
    .stack 256
    .entry main
    .msg on_msg
main:
    movi r0, 8            ; kSysWaitMsg
    int  0x21
hang:
    jmp  hang
on_msg:
    li   r5, __tytan_mailbox
    ldw  r1, [r5+8]
    movi r0, 4            ; kSysPutchar
    int  0x21
    movi r0, 9            ; kSysMsgDone
    int  0x21
hang2:
    jmp  hang2
)";

// ----------------------------------------------------------- plan grammar

TEST(FaultPlan, ParsesEveryClass) {
  const fault::FaultPlan plan =
      plan_of("tbf-bitflip@load:task2; storage-corrupt@cycle=10000:slot3; "
              "nonce-replay@attest#2; ipc-drop:pct=5; task-stall:sensor");
  ASSERT_EQ(plan.specs.size(), 5u);

  EXPECT_EQ(plan.specs[0].cls, fault::FaultClass::kTbfBitflip);
  EXPECT_EQ(plan.specs[0].target, "task2");
  EXPECT_EQ(plan.specs[0].max_fires, 1u);

  EXPECT_EQ(plan.specs[1].cls, fault::FaultClass::kStorageCorrupt);
  EXPECT_TRUE(plan.specs[1].has_slot);
  EXPECT_EQ(plan.specs[1].slot, 3u);
  EXPECT_EQ(plan.specs[1].at_cycle, 10'000u);

  EXPECT_EQ(plan.specs[2].cls, fault::FaultClass::kNonceReplay);
  EXPECT_EQ(plan.specs[2].at_count, 2u);

  EXPECT_EQ(plan.specs[3].cls, fault::FaultClass::kIpcDrop);
  EXPECT_EQ(plan.specs[3].pct, 5u);
  EXPECT_EQ(plan.specs[3].max_fires, 0u);  // rate-based: unlimited by default

  EXPECT_EQ(plan.specs[4].cls, fault::FaultClass::kTaskStall);
  EXPECT_EQ(plan.specs[4].target, "sensor");
}

TEST(FaultPlan, ParsesParameters) {
  const fault::FaultPlan capped = plan_of("ipc-drop:pct=100,count=2");
  ASSERT_EQ(capped.specs.size(), 1u);
  EXPECT_EQ(capped.specs[0].pct, 100u);
  EXPECT_EQ(capped.specs[0].max_fires, 2u);

  const fault::FaultPlan pinned = plan_of("tbf-bitflip@load#3:boot,bit=17");
  ASSERT_EQ(pinned.specs.size(), 1u);
  EXPECT_EQ(pinned.specs[0].at_count, 3u);
  EXPECT_EQ(pinned.specs[0].bit, 17);

  // nonce-replay with no trigger defaults to the first attestation.
  EXPECT_EQ(plan_of("nonce-replay").specs[0].at_count, 1u);
}

TEST(FaultPlan, RejectsGarbage) {
  EXPECT_FALSE(fault::FaultPlan::parse("").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("cosmic-ray:everywhere").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("tbf-bitflip@attest#1").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("nonce-replay@load").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("nonce-replay:task2").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("storage-corrupt:banana").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("storage-corrupt").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("ipc-drop").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("ipc-drop:pct=101").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("ipc-drop:pct=5,burst=3").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("task-stall").is_ok());
  EXPECT_FALSE(fault::FaultPlan::parse("task-stall@cycle=oops:sensor").is_ok());
  // The error names the offending clause.
  auto bad = fault::FaultPlan::parse("task-stall:sensor; frobnicate");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().to_string().find("frobnicate"), std::string::npos);
}

TEST(FaultPlan, ToStringReparses) {
  const fault::FaultPlan plan =
      plan_of("tbf-bitflip@load#2:boot,bit=9; storage-corrupt@cycle=500:slot1; "
              "ipc-drop:pct=50,count=4");
  for (const fault::FaultSpec& spec : plan.specs) {
    const fault::FaultPlan again = plan_of(spec.to_string().c_str());
    ASSERT_EQ(again.specs.size(), 1u) << spec.to_string();
    EXPECT_EQ(again.specs[0].cls, spec.cls);
    EXPECT_EQ(again.specs[0].target, spec.target);
    EXPECT_EQ(again.specs[0].slot, spec.slot);
    EXPECT_EQ(again.specs[0].at_cycle, spec.at_cycle);
    EXPECT_EQ(again.specs[0].at_count, spec.at_count);
    EXPECT_EQ(again.specs[0].pct, spec.pct);
    EXPECT_EQ(again.specs[0].max_fires, spec.max_fires);
    EXPECT_EQ(again.specs[0].bit, spec.bit);
  }
}

// ------------------------------------------------------- engine determinism

TEST(FaultEngine, SeededDecisionsAreReproducible) {
  fault::FaultPlan plan = plan_of("tbf-bitflip:victim");
  plan.seed = 1234;
  fault::FaultEngine a(plan);
  fault::FaultEngine b(plan);
  const std::int64_t bit_a = a.on_load("victim", 4096);
  const std::int64_t bit_b = b.on_load("victim", 4096);
  ASSERT_GE(bit_a, 0);
  EXPECT_EQ(bit_a, bit_b);
  EXPECT_LT(bit_a, 4096 * 8);
}

TEST(FaultEngine, EveryClassFiresExactlyOnce) {
  fault::FaultEngine engine(
      plan_of("tbf-bitflip:v; storage-corrupt:slot3; nonce-replay@attest#1; "
              "ipc-drop:pct=100,count=1; task-stall:v"));
  EXPECT_GE(engine.on_load("v", 256), 0);
  EXPECT_EQ(engine.on_load("v", 256), -1);  // spec exhausted
  EXPECT_EQ(engine.on_load("other", 256), -1);

  EXPECT_GE(engine.on_storage_access(3, 0, 64), 0);
  EXPECT_EQ(engine.on_storage_access(3, 0, 64), -1);
  EXPECT_EQ(engine.on_storage_access(4, 0, 64), -1);  // wrong slot

  EXPECT_TRUE(engine.on_attest(1));
  EXPECT_FALSE(engine.on_attest(1));
  EXPECT_FALSE(engine.on_attest(2));

  EXPECT_TRUE(engine.on_ipc_message());
  EXPECT_FALSE(engine.on_ipc_message());  // count=1 cap

  EXPECT_TRUE(engine.on_task_dispatch("v", 100));
  EXPECT_FALSE(engine.on_task_dispatch("v", 200));

  EXPECT_EQ(engine.injected_total(), 5u);
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(fault::FaultClass::kNumClasses); ++c) {
    EXPECT_EQ(engine.injected(static_cast<fault::FaultClass>(c)), 1u);
  }
}

TEST(FaultEngine, TriggersGateFiring) {
  fault::FaultEngine engine(
      plan_of("tbf-bitflip@load#2; storage-corrupt@cycle=5000:slot0"));
  EXPECT_EQ(engine.on_load("a", 128), -1);  // load #1: not yet
  EXPECT_GE(engine.on_load("b", 128), 0);   // load #2 fires (any task)
  EXPECT_EQ(engine.on_storage_access(0, 4999, 64), -1);  // before the cycle
  EXPECT_GE(engine.on_storage_access(0, 5000, 64), 0);
}

// ---------------------------------------- injection + recovery, per class

TEST(FaultInjection, BitflipQuarantinesThenCleanReloadRecovers) {
  // Measure the golden identity on a pristine platform first.
  rtos::TaskIdentity golden{};
  {
    Platform pristine;
    ASSERT_TRUE(pristine.boot().is_ok());
    auto task = pristine.load_task_source(kSecureSpinner, {.name = "victim"});
    ASSERT_TRUE(task.is_ok()) << task.status().to_string();
    golden = pristine.scheduler().get(*task)->identity;
  }

  Platform::Config config;
  config.fault_plan = plan_of("tbf-bitflip@load:victim");
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());

  core::LoadParams params{.name = "victim"};
  params.expected_identity = golden;
  auto corrupt = platform.load_task_source(kSecureSpinner, params);
  ASSERT_FALSE(corrupt.is_ok());
  EXPECT_EQ(corrupt.status().code(), Err::kCorrupt);
  ASSERT_EQ(platform.loader().quarantine().size(), 1u);
  EXPECT_EQ(platform.loader().quarantine()[0].name, "victim");
  EXPECT_NE(platform.loader().quarantine()[0].measured, golden);

  // The spec fired; a clean reload passes the golden gate — recovery.
  auto clean = platform.load_task_source(kSecureSpinner, params);
  ASSERT_TRUE(clean.is_ok()) << clean.status().to_string();
  EXPECT_EQ(platform.scheduler().get(*clean)->identity, golden);

  const fault::FaultEngine* engine = platform.fault_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->injected(fault::FaultClass::kTbfBitflip), 1u);
  EXPECT_EQ(engine->recovered(fault::FaultClass::kTbfBitflip), 1u);
}

TEST(FaultInjection, StorageCorruptPoisonsThenReStoreRecovers) {
  Platform::Config config;
  config.fault_plan = plan_of("storage-corrupt:slot3");
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  const rtos::TaskIdentity id = make_id(0x42);
  const ByteVec data(48, 0xAB);
  ASSERT_TRUE(storage.store(id, 3, data).is_ok());

  // First load hits the injected bit flip: typed kCorrupt, blob poisoned.
  auto bad = storage.load(id, 3);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), Err::kCorrupt);
  EXPECT_EQ(storage.poisoned_count(), 1u);

  // Later loads fail fast on the poison mark (no second unseal attempt).
  auto again = storage.load(id, 3);
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), Err::kCorrupt);
  EXPECT_NE(again.status().to_string().find("poisoned"), std::string::npos);

  // A superseding store is the recovery path.
  ASSERT_TRUE(storage.store(id, 3, data).is_ok());
  EXPECT_EQ(storage.poisoned_count(), 0u);
  auto good = storage.load(id, 3);
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(*good, data);

  const fault::FaultEngine* engine = platform.fault_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->injected(fault::FaultClass::kStorageCorrupt), 1u);
  EXPECT_EQ(engine->recovered(fault::FaultClass::kStorageCorrupt), 1u);
  // Other slots were untouched by the slot-targeted clause.
  ASSERT_TRUE(storage.store(id, 4, data).is_ok());
  EXPECT_TRUE(storage.load(id, 4).is_ok());
}

TEST(FaultInjection, IpcDropReturnsTypedErrorThenDelivers) {
  Platform::Config config;
  config.fault_plan = plan_of("ipc-drop:pct=100,count=1");
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto receiver = platform.load_task_source(kReceiver, {.name = "receiver"});
  ASSERT_TRUE(receiver.is_ok());
  platform.run_for(200'000);  // park the receiver in wait-msg

  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  const rtos::TaskIdentity service_id{};
  Status dropped =
      platform.ipc_proxy().deliver(service_id, r->identity, {'H', 0, 0, 0}, false);
  ASSERT_FALSE(dropped.is_ok());
  EXPECT_EQ(dropped.code(), Err::kUnavailable);
  EXPECT_EQ(platform.ipc_proxy().messages_dropped(), 1u);
  EXPECT_EQ(platform.ipc_proxy().messages_delivered(), 0u);

  // The drop cap is exhausted: the retry goes through end-to-end.
  ASSERT_TRUE(platform.ipc_proxy()
                  .deliver(service_id, r->identity, {'H', 0, 0, 0}, false)
                  .is_ok());
  ASSERT_TRUE(platform.run_until([&] { return !platform.serial().output().empty(); },
                                 10'000'000));
  EXPECT_EQ(platform.serial().output(), "H");
  EXPECT_EQ(platform.fault_engine()->injected(fault::FaultClass::kIpcDrop), 1u);
}

TEST(FaultInjection, TaskStallIsRestartedByWatchdog) {
  Platform::Config config;
  config.fault_plan = plan_of("task-stall:spinner");
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSecureSpinner, {.name = "spinner"});
  ASSERT_TRUE(task.is_ok());
  platform.run_for(2'000'000);

  const fault::FaultEngine* engine = platform.fault_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->injected(fault::FaultClass::kTaskStall), 1u);
  EXPECT_EQ(engine->recovered(fault::FaultClass::kTaskStall), 1u);
  EXPECT_EQ(platform.kernel().watchdog_restarts(), 1u);

  // The task came back: not stalled, restart accounted, still making progress.
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  ASSERT_NE(tcb, nullptr);
  EXPECT_FALSE(tcb->stalled);
  EXPECT_EQ(tcb->watchdog_restarts, 1u);
  EXPECT_GT(tcb->activations, 1u);
}

TEST(FaultInjection, NonceReplayIsRetriedWithBackoff) {
  fleet::FleetConfig config;
  config.device_count = 2;
  config.threads = 2;
  config.fault_plan = plan_of("nonce-replay@attest#2");
  config.fault_plan_device = 1;
  config.attest_retries = 2;
  fleet::Fleet fleet(config);
  ASSERT_TRUE(fleet.bring_up().is_ok());
  ASSERT_TRUE(fleet.deploy(fleet::default_task_source(), "fleet-fw", 1).is_ok());
  fleet.run(200'000);

  // Sweep 1 verifies normally; sweep 2 replays device 1's consumed nonce —
  // the verifier's single-use ledger rejects it — and the bounded-backoff
  // retry restores a verifying device.
  EXPECT_EQ(fleet.attest_all("fleet-fw"), 2u);
  EXPECT_EQ(fleet.attest_all("fleet-fw"), 2u);

  fleet::FleetDevice& victim = fleet.device(1);
  EXPECT_EQ(victim.attest_failed(), 1u);
  EXPECT_EQ(victim.attest_verified(), 2u);
  EXPECT_EQ(victim.attest_recoveries(), 1u);
  const fault::FaultEngine* engine = victim.platform().fault_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->injected(fault::FaultClass::kNonceReplay), 1u);
  EXPECT_EQ(engine->recovered(fault::FaultClass::kNonceReplay), 1u);
  // The healthy control device never failed.
  EXPECT_EQ(fleet.device(0).attest_failed(), 0u);
  EXPECT_EQ(fleet.device(0).platform().fault_engine(), nullptr);
}

TEST(FleetFault, DeployQuarantineRetriesFromPristineImage) {
  fleet::FleetConfig config;
  config.device_count = 3;
  config.threads = 3;
  config.fault_plan = plan_of("tbf-bitflip@load:fleet-fw");
  config.fault_plan_device = 2;
  fleet::Fleet fleet(config);
  ASSERT_TRUE(fleet.bring_up().is_ok());
  ASSERT_TRUE(fleet.deploy(fleet::default_task_source(), "fleet-fw", 1).is_ok());
  fleet.run(200'000);
  EXPECT_EQ(fleet.attest_all("fleet-fw"), 3u);  // victim recovered, all verify

  EXPECT_EQ(fleet.device(2).quarantines(), 1u);
  EXPECT_EQ(fleet.device(0).quarantines(), 0u);
  const fault::FaultEngine* engine = fleet.device(2).platform().fault_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->injected(fault::FaultClass::kTbfBitflip), 1u);
  EXPECT_EQ(engine->recovered(fault::FaultClass::kTbfBitflip), 1u);
  EXPECT_EQ(fleet.device(2).platform().loader().quarantine().size(), 1u);
}

// --------------------------------------------------- fleet determinism

std::string faulted_fleet_jsonl(std::size_t threads) {
  fleet::FleetConfig config;
  config.device_count = 4;
  config.threads = threads;
  config.telemetry.enabled = true;
  config.fault_plan = plan_of("task-stall:fleet-fw; nonce-replay@attest#2");
  config.fault_plan_device = 1;
  config.attest_retries = 2;
  fleet::Fleet fleet(config);
  EXPECT_TRUE(fleet.bring_up().is_ok());
  EXPECT_TRUE(fleet.deploy(fleet::default_task_source(), "fleet-fw", 1).is_ok());
  fleet.run(400'000);
  EXPECT_EQ(fleet.attest_all("fleet-fw"), 4u);
  EXPECT_EQ(fleet.attest_all("fleet-fw"), 4u);
  return fleet.telemetry().to_jsonl();
}

TEST(FleetFault, TelemetryByteIdenticalAcrossThreadCounts) {
  const std::string serial = faulted_fleet_jsonl(1);
  const std::string threaded = faulted_fleet_jsonl(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  // The stream carries the injection counters for the victim device.
  EXPECT_NE(serial.find("\"faults_injected\":"), std::string::npos);
  EXPECT_NE(serial.find("\"watchdog_restarts\":1"), std::string::npos);
}

// ------------------------------------------- storage accounting satellites

TEST(StorageAccounting, FailedStoreBurnsNoNonceAndChargesNoCycles) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  const rtos::TaskIdentity id = make_id(0x11);
  ASSERT_TRUE(storage.store(id, 0, ByteVec{1, 2, 3}).is_ok());
  const std::uint64_t nonces_before = storage.nonces_used();
  const std::uint64_t cycles_before = platform.machine().cycles();
  const std::uint32_t bytes_before = storage.bytes_used();

  // Larger than the whole storage area: rejected before any consumption.
  const ByteVec huge(core::kStorageSize, 0xEE);
  Status full = storage.store(id, 1, huge);
  ASSERT_FALSE(full.is_ok());
  EXPECT_EQ(full.code(), Err::kOutOfMemory);
  EXPECT_EQ(storage.nonces_used(), nonces_before);
  EXPECT_EQ(platform.machine().cycles(), cycles_before);
  EXPECT_EQ(storage.bytes_used(), bytes_before);
  EXPECT_EQ(storage.blob_count(), 1u);

  // The sequence of nonces visible in stored blobs stays gapless: a store
  // right after the failure reuses the nonce the failed store never burned.
  ASSERT_TRUE(storage.store(id, 1, ByteVec{4, 5}).is_ok());
  EXPECT_EQ(storage.nonces_used(), nonces_before + 1);
}

TEST(StorageAccounting, ReStoreInvalidatesOldBlobAndWins) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& storage = platform.secure_storage();
  const rtos::TaskIdentity id = make_id(0x22);
  const ByteVec first(32, 0x01);
  const ByteVec second(40, 0x02);

  ASSERT_TRUE(storage.store(id, 5, first).is_ok());
  const std::uint32_t after_first = storage.bytes_used();
  ASSERT_TRUE(storage.store(id, 5, second).is_ok());

  // Exactly one valid blob for the slot; the load returns the new data.
  EXPECT_EQ(storage.blob_count(), 1u);
  auto back = storage.load(id, 5);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, second);
  // The area is append-only (flash-like): the superseded blob still occupies
  // space, it is just no longer reachable.
  EXPECT_GT(storage.bytes_used(), after_first);
  EXPECT_EQ(storage.nonces_used(), 2u);
}

}  // namespace
}  // namespace tytan
