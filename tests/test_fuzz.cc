// Robustness fuzzing (deterministic seeds): random bytes into every parser
// and random instruction streams into the interpreter must never crash,
// hang, or corrupt invariants — at worst they fault cleanly.
#include <gtest/gtest.h>

#include <random>

#include "analysis/analyzer.h"
#include "isa/assembler.h"
#include "sim/machine.h"
#include "core/platform.h"
#include "tbf/tbf.h"

namespace tytan {
namespace {

TEST(Fuzz, TbfReaderNeverCrashesOnRandomBytes) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 300);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    auto object = tbf::read(raw);  // must return, never crash
    if (object.is_ok()) {
      // Whatever parsed must satisfy the structural invariants.
      EXPECT_LE(object->entry, object->image.size());
      for (const auto& reloc : object->relocs) {
        EXPECT_LE(reloc.offset + 4, object->image.size());
      }
    }
  }
}

TEST(Fuzz, TbfReaderNeverCrashesOnMutatedValidFiles) {
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      li r1, data
      hlt
  data:
      .word main
  )");
  ASSERT_TRUE(object.is_ok());
  const ByteVec valid = tbf::write(*object);
  std::mt19937 rng(2);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec mutated = valid;
    const int mutations = 1 + rng() % 8;
    for (int m = 0; m < mutations; ++m) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    (void)tbf::read(mutated);  // any outcome but a crash is fine
  }
}

TEST(Fuzz, AssemblerNeverCrashesOnRandomText) {
  std::mt19937 rng(3);
  const char charset[] = "abcdefghijklmnop rstuvwxyz0123456789 .,:[]+-#;\"\\\n\t";
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string source;
    const std::size_t len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      source.push_back(charset[rng() % (sizeof(charset) - 1)]);
    }
    (void)isa::assemble(source);  // must return a Status, never crash
  }
}

TEST(Fuzz, AssemblerNeverCrashesOnMutatedValidSource) {
  const std::string valid = R"(
      .stack 256
      .entry main
  main:
      li   r2, buffer
      ldw  r3, [r2+4]
      addi r3, 1
      stw  r3, [r2]
      cmpi r3, 100
      jnz  main
      hlt
  buffer:
      .word 1, 2, 3
  )";
  std::mt19937 rng(4);
  const char charset[] = "abcdefghijklmnopqrstuvwxyz0123456789 .,:[]+-\n";
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string mutated = valid;
    for (int m = 0; m < 4; ++m) {
      mutated[rng() % mutated.size()] = charset[rng() % (sizeof(charset) - 1)];
    }
    auto object = isa::assemble(mutated);
    if (object.is_ok()) {
      EXPECT_LE(object->entry, object->image.size());
    }
  }
}

TEST(Fuzz, RandomInstructionStreamsFaultCleanly) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    sim::Machine machine;
    // Fill a code region with random words (valid and invalid opcodes mixed)
    // and a fault handler that halts.
    constexpr std::uint32_t kCode = 0x40000;
    for (std::uint32_t offset = 0; offset < 0x400; offset += 4) {
      std::uint32_t word = rng();
      if (rng() % 4 == 0) {
        // Bias toward decodable opcodes so execution actually proceeds.
        word = (word & 0x00FF'FFFFu) | (static_cast<std::uint32_t>(rng() % 0x46) << 24);
      }
      machine.memory().write32(kCode + offset, word);
    }
    machine.cpu().eip = kCode;
    machine.cpu().set_sp(0x48000);
    machine.run(20'000);  // bounded: halts, faults, or hits the cycle limit
    // The machine ends in a coherent state: either it made progress, or it
    // halted on a classified fault on the very first instruction.
    if (machine.cycles() == 0) {
      EXPECT_EQ(machine.halt_reason(), sim::HaltReason::kDoubleFault);
    }
    if (machine.halt_reason() == sim::HaltReason::kDoubleFault) {
      EXPECT_NE(machine.last_fault().type, sim::FaultType::kNone);
    }
  }
}

TEST(Fuzz, RandomGuestTasksCannotBreakTheBootedPlatform) {
  std::mt19937 rng(6);
  // Fork-style fuzzing: boot once, snapshot the pristine post-boot state,
  // and restore it before every input — each trial starts from an identical
  // platform without paying the boot cost (the tytan-fuzz tool scales this
  // up; bench_snapshot measures the speedup over reboot-per-input).
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto pristine = platform.save();
  ASSERT_TRUE(pristine.is_ok()) << pristine.status().to_string();
  for (int trial = 0; trial < 25; ++trial) {
    ASSERT_TRUE(platform.restore(*pristine).is_ok());
    // A syntactically valid task full of random (decodable) instructions.
    isa::ObjectFile object;
    object.stack_size = 128;
    for (int i = 0; i < 64; ++i) {
      std::uint32_t word = rng();
      word = (word & 0x00FF'FFFFu) | (static_cast<std::uint32_t>(rng() % 0x46) << 24);
      append_le32(object.image, word);
    }
    object.flags = isa::kObjSecure;
    auto task = platform.load_task(std::move(object),
                                   {.name = "fuzz" + std::to_string(trial)});
    if (task.is_ok()) {
      platform.run_for(300'000);
    }
    // Every trial leaves the platform healthy; the next restore wipes it.
    EXPECT_FALSE(platform.machine().halted());
  }
  // Back to the pristine state: trusted components intact, idle healthy.
  ASSERT_TRUE(platform.restore(*pristine).is_ok());
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_EQ(platform.rtm().entries().size(), 0u);
  platform.run_for(100'000);
  EXPECT_GT(platform.kernel().tick_count(), 0u);
}

TEST(Fuzz, AttestationReportParserRobust) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 64);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    (void)core::AttestationReport::deserialize(raw);
  }
}

// ---------------------------------------------------------------------------
// Structured fuzzing: the static verifier and the machine must agree.  Valid
// images are mutated in targeted ways (branch displacements flipped,
// relocation records corrupted, images truncated); every mutant either gets
// rejected statically (TBF reader or analyzer error) or runs to a clean stop
// on the bare machine — never an unclassified crash of either component.
// ---------------------------------------------------------------------------

/// A well-formed non-secure program exercising branches, a call, relocated
/// data accesses, and a data table — the shapes the mutations target.
constexpr std::string_view kStructuredBase = R"(
    .entry start
start:
    li r1, counter
    ldw r2, [r1]
    cmpi r2, 0
    jz init
    addi r2, 1
    jmp store
init:
    movi r2, 1
store:
    stw r2, [r1]
    call helper
    jmp done
helper:
    push r3
    movi r3, 5
loop:
    subi r3, 1
    cmpi r3, 0
    jnz loop
    pop r3
    ret
done:
    hlt
counter:
    .word 0
table:
    .word start
    .word helper
)";

bool is_branch_or_call(const std::optional<isa::Instruction>& instr) {
  if (!instr.has_value()) {
    return false;
  }
  switch (instr->opcode) {
    case isa::Opcode::kJmp:
    case isa::Opcode::kJz:
    case isa::Opcode::kJnz:
    case isa::Opcode::kJlt:
    case isa::Opcode::kJge:
    case isa::Opcode::kJc:
    case isa::Opcode::kJnc:
    case isa::Opcode::kCall:
      return true;
    default:
      return false;
  }
}

/// Run a relocated mutant on a bare machine; true iff it stops cleanly
/// (hlt or cycle budget), false on a double fault.
bool runs_cleanly(const isa::ObjectFile& object) {
  constexpr std::uint32_t kBase = 0x40000;
  ByteVec image = object.image;
  for (const isa::Relocation& reloc : object.relocs) {
    tbf::apply_relocation(reloc, image, kBase);
  }
  sim::Machine machine;
  for (std::size_t i = 0; i < image.size(); ++i) {
    machine.memory().write8(kBase + static_cast<std::uint32_t>(i), image[i]);
  }
  machine.cpu().eip = kBase + object.entry;
  machine.cpu().set_sp(0x60000);  // well clear of the image
  const sim::HaltReason reason = machine.run(50'000);
  return reason == sim::HaltReason::kHltInstruction ||
         reason == sim::HaltReason::kCycleLimit;
}

TEST(Fuzz, AnalyzerVerdictAgreesWithMachineBehavior) {
  auto assembled = isa::assemble(kStructuredBase);
  ASSERT_TRUE(assembled.is_ok()) << assembled.status().to_string();
  const isa::ObjectFile base = assembled.take();
  {
    // The unmutated base is clean and runs.
    const auto report = analysis::analyze(base);
    ASSERT_EQ(report.errors(), 0u) << report.to_string();
    ASSERT_TRUE(runs_cleanly(base));
  }

  std::mt19937 rng(11);
  int rejected = 0;
  int survived = 0;
  for (int trial = 0; trial < 400; ++trial) {
    isa::ObjectFile mutant = base;
    switch (rng() % 3) {
      case 0: {
        // Flip bits in the displacement of a random branch/call.
        std::vector<std::uint32_t> sites;
        for (std::uint32_t off = 0; off + 4 <= mutant.image.size(); off += 4) {
          if (is_branch_or_call(isa::decode(load_le32(mutant.image.data() + off)))) {
            sites.push_back(off);
          }
        }
        ASSERT_FALSE(sites.empty());
        const std::uint32_t site = sites[rng() % sites.size()];
        std::uint32_t word = load_le32(mutant.image.data() + site);
        word ^= rng() & 0xFFFFu;
        store_le32(mutant.image.data() + site, word);
        break;
      }
      case 1: {
        // Corrupt one relocation record.
        ASSERT_FALSE(mutant.relocs.empty());
        isa::Relocation& reloc = mutant.relocs[rng() % mutant.relocs.size()];
        switch (rng() % 3) {
          case 0: reloc.offset = rng() % 64; break;
          case 1: reloc.addend = rng(); break;
          default: reloc.kind = static_cast<isa::RelocKind>(rng() % 3); break;
        }
        break;
      }
      default: {
        // Truncate a whole number of words off the end (keep relocs: the
        // dangling records must be caught statically).
        const std::size_t words = mutant.image.size() / 4;
        const std::size_t keep = 1 + rng() % (words - 1);
        mutant.image.resize(keep * 4);
        break;
      }
    }

    // Round-trip through the container: the reader may reject outright.
    auto reread = tbf::read(tbf::write(mutant));
    if (!reread.is_ok()) {
      ++rejected;
      continue;
    }
    const auto report = analysis::analyze(*reread);
    if (report.errors() > 0) {
      ++rejected;
      continue;
    }
    // The verifier passed it: the machine must not blow up on it.
    EXPECT_TRUE(runs_cleanly(*reread)) << "analyzer-clean mutant crashed "
                                          "(trial " << trial << "):\n"
                                       << report.to_string();
    ++survived;
  }
  // The mutation engine produces both kinds, or the test proves nothing.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(survived, 0);
}

TEST(Fuzz, AnalyzerNeverCrashesOnRandomImages) {
  std::mt19937 rng(12);
  for (int trial = 0; trial < 500; ++trial) {
    isa::ObjectFile object;
    const std::size_t words = 1 + rng() % 64;
    for (std::size_t i = 0; i < words; ++i) {
      std::uint32_t word = rng();
      if (rng() % 2 == 0) {
        word = (word & 0x00FF'FFFFu) | (static_cast<std::uint32_t>(rng() % 0x46) << 24);
      }
      append_le32(object.image, word);
    }
    object.entry = rng() % (words * 4 + 8);
    object.stack_size = rng() % 512;
    object.flags = rng() % 4;
    const std::size_t n_relocs = rng() % 6;
    for (std::size_t i = 0; i < n_relocs; ++i) {
      object.relocs.push_back({.offset = static_cast<std::uint32_t>(rng() % (words * 4 + 8)),
                               .kind = static_cast<isa::RelocKind>(rng() % 3),
                               .addend = rng()});
    }
    (void)analysis::analyze(object);  // must return, never crash or hang
  }
}

/// Randomized jump-table program: power-of-two case count, mask or
/// compare/branch bound idiom, junk arithmetic interleaved, table entries
/// shuffled (duplicates allowed).
std::string random_jump_table(std::mt19937& rng) {
  const int cases = 2 << (rng() % 2);  // 2 or 4
  std::string s = ".entry main\nmain:\n";
  const bool masked = rng() % 2 == 0;
  if (masked) {
    s += "    andi r1, " + std::to_string(cases - 1) + "\n";
  } else {
    s += "    cmpi r1, " + std::to_string(cases) + "\n    jnc reject\n";
  }
  if (rng() % 2 == 0) {  // junk that must not disturb the index
    s += "    movi r3, " + std::to_string(rng() % 100) + "\n    add r0, r3\n";
  }
  s += "    shli r1, 2\n    li r2, table\n    add r2, r1\n    ldw r2, [r2]\n"
       "    jmpr r2\n";
  for (int c = 0; c < cases; ++c) {
    s += "case" + std::to_string(c) + ":\n    movi r0, " + std::to_string(c) +
         "\n    jmp done\n";
  }
  s += "reject:\ndone:\n    hlt\ntable:\n    .word";
  for (int c = 0; c < cases; ++c) {
    s += (c == 0 ? " case" : ", case") + std::to_string(rng() % cases);
  }
  return s + "\n";
}

TEST(Fuzz, DataflowDifferentialOnRandomJumpTables) {
  std::mt19937 rng(13);
  int resolved_programs = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string source = random_jump_table(rng);
    auto assembled = isa::assemble(source);
    ASSERT_TRUE(assembled.is_ok()) << assembled.status().to_string();
    isa::ObjectFile object = assembled.take();
    if (rng() % 4 == 0 && !object.relocs.empty()) {
      // Corrupt one relocation addend: the analyzer must catch bad targets
      // (DF003/RL004) or stay sound about whatever it still resolves.
      isa::Relocation& reloc = object.relocs[rng() % object.relocs.size()];
      reloc.addend = rng() % (object.memory_size() + 64);
      source += "; corrupted reloc off=" + std::to_string(reloc.offset) +
                " kind=" + std::to_string(static_cast<int>(reloc.kind)) +
                " addend=" + std::to_string(reloc.addend) + "\n";
    }
    const analysis::Analysis full = analysis::analyze_full(object);
    if (full.report.errors() > 0 || full.dataflow.resolved.empty()) {
      continue;
    }
    ++resolved_programs;
    // Differential check: no dynamic indirect edge may leave the resolved
    // set, for in-range and wildly out-of-range selectors alike.
    constexpr std::uint32_t kBase = 0x40000;
    ByteVec image = object.image;
    for (const isa::Relocation& reloc : object.relocs) {
      tbf::apply_relocation(reloc, image, kBase);
    }
    for (const std::uint32_t r1 :
         {0u, 1u, 3u, 7u, static_cast<std::uint32_t>(rng())}) {
      sim::Machine machine;
      for (std::size_t i = 0; i < image.size(); ++i) {
        machine.memory().write8(kBase + static_cast<std::uint32_t>(i), image[i]);
      }
      machine.cpu().eip = kBase + object.entry;
      machine.cpu().set_sp(0x60000);
      machine.cpu().regs[1] = r1;
      machine.set_indirect_branch_hook(
          [&](std::uint32_t pc, std::uint32_t target, bool) {
            const auto it = full.dataflow.resolved.find(pc - kBase);
            if (it == full.dataflow.resolved.end()) {
              return;
            }
            EXPECT_TRUE(std::find(it->second.begin(), it->second.end(),
                                  target - kBase) != it->second.end())
                << "trial " << trial << " r1=" << r1 << ": edge 0x" << std::hex
                << pc - kBase << " -> 0x" << target - kBase
                << " escapes the resolved set\n"
                << source;
          });
      (void)machine.run(50'000);
    }
  }
  // The generator must actually exercise resolution, or this proves nothing.
  EXPECT_GT(resolved_programs, 100);
}

TEST(Fuzz, SealedBlobParserRobust) {
  std::mt19937 rng(8);
  crypto::Key128 key{};
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 128);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    auto blob = crypto::SealedBlob::deserialize(raw);
    if (blob.is_ok()) {
      // Random bytes never authenticate under a fixed key.
      EXPECT_FALSE(crypto::unseal(key, *blob).is_ok());
    }
  }
}

}  // namespace
}  // namespace tytan
