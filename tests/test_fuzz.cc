// Robustness fuzzing (deterministic seeds): random bytes into every parser
// and random instruction streams into the interpreter must never crash,
// hang, or corrupt invariants — at worst they fault cleanly.
#include <gtest/gtest.h>

#include <random>

#include "isa/assembler.h"
#include "sim/machine.h"
#include "core/platform.h"
#include "tbf/tbf.h"

namespace tytan {
namespace {

TEST(Fuzz, TbfReaderNeverCrashesOnRandomBytes) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 300);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    auto object = tbf::read(raw);  // must return, never crash
    if (object.is_ok()) {
      // Whatever parsed must satisfy the structural invariants.
      EXPECT_LE(object->entry, object->image.size());
      for (const auto& reloc : object->relocs) {
        EXPECT_LE(reloc.offset + 4, object->image.size());
      }
    }
  }
}

TEST(Fuzz, TbfReaderNeverCrashesOnMutatedValidFiles) {
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      li r1, data
      hlt
  data:
      .word main
  )");
  ASSERT_TRUE(object.is_ok());
  const ByteVec valid = tbf::write(*object);
  std::mt19937 rng(2);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec mutated = valid;
    const int mutations = 1 + rng() % 8;
    for (int m = 0; m < mutations; ++m) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    (void)tbf::read(mutated);  // any outcome but a crash is fine
  }
}

TEST(Fuzz, AssemblerNeverCrashesOnRandomText) {
  std::mt19937 rng(3);
  const char charset[] = "abcdefghijklmnop rstuvwxyz0123456789 .,:[]+-#;\"\\\n\t";
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string source;
    const std::size_t len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      source.push_back(charset[rng() % (sizeof(charset) - 1)]);
    }
    (void)isa::assemble(source);  // must return a Status, never crash
  }
}

TEST(Fuzz, AssemblerNeverCrashesOnMutatedValidSource) {
  const std::string valid = R"(
      .stack 256
      .entry main
  main:
      li   r2, buffer
      ldw  r3, [r2+4]
      addi r3, 1
      stw  r3, [r2]
      cmpi r3, 100
      jnz  main
      hlt
  buffer:
      .word 1, 2, 3
  )";
  std::mt19937 rng(4);
  const char charset[] = "abcdefghijklmnopqrstuvwxyz0123456789 .,:[]+-\n";
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string mutated = valid;
    for (int m = 0; m < 4; ++m) {
      mutated[rng() % mutated.size()] = charset[rng() % (sizeof(charset) - 1)];
    }
    auto object = isa::assemble(mutated);
    if (object.is_ok()) {
      EXPECT_LE(object->entry, object->image.size());
    }
  }
}

TEST(Fuzz, RandomInstructionStreamsFaultCleanly) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    sim::Machine machine;
    // Fill a code region with random words (valid and invalid opcodes mixed)
    // and a fault handler that halts.
    constexpr std::uint32_t kCode = 0x40000;
    for (std::uint32_t offset = 0; offset < 0x400; offset += 4) {
      std::uint32_t word = rng();
      if (rng() % 4 == 0) {
        // Bias toward decodable opcodes so execution actually proceeds.
        word = (word & 0x00FF'FFFFu) | (static_cast<std::uint32_t>(rng() % 0x46) << 24);
      }
      machine.memory().write32(kCode + offset, word);
    }
    machine.cpu().eip = kCode;
    machine.cpu().set_sp(0x48000);
    machine.run(20'000);  // bounded: halts, faults, or hits the cycle limit
    // The machine ends in a coherent state: either it made progress, or it
    // halted on a classified fault on the very first instruction.
    if (machine.cycles() == 0) {
      EXPECT_EQ(machine.halt_reason(), sim::HaltReason::kDoubleFault);
    }
    if (machine.halt_reason() == sim::HaltReason::kDoubleFault) {
      EXPECT_NE(machine.last_fault().type, sim::FaultType::kNone);
    }
  }
}

TEST(Fuzz, RandomGuestTasksCannotBreakTheBootedPlatform) {
  std::mt19937 rng(6);
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  for (int trial = 0; trial < 25; ++trial) {
    // A syntactically valid task full of random (decodable) instructions.
    isa::ObjectFile object;
    object.stack_size = 128;
    for (int i = 0; i < 64; ++i) {
      std::uint32_t word = rng();
      word = (word & 0x00FF'FFFFu) | (static_cast<std::uint32_t>(rng() % 0x46) << 24);
      append_le32(object.image, word);
    }
    object.flags = isa::kObjSecure;
    auto task = platform.load_task(std::move(object),
                                   {.name = "fuzz" + std::to_string(trial)});
    if (task.is_ok()) {
      platform.run_for(300'000);
      if (platform.scheduler().get(*task) != nullptr) {
        (void)platform.unload_task(*task);
      }
    }
  }
  // The platform survives: not halted, trusted state intact, idle healthy.
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_EQ(platform.rtm().entries().size(), 0u);
  platform.run_for(100'000);
  EXPECT_GT(platform.kernel().tick_count(), 0u);
}

TEST(Fuzz, AttestationReportParserRobust) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 64);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    (void)core::AttestationReport::deserialize(raw);
  }
}

TEST(Fuzz, SealedBlobParserRobust) {
  std::mt19937 rng(8);
  crypto::Key128 key{};
  for (int trial = 0; trial < 2'000; ++trial) {
    ByteVec raw(rng() % 128);
    for (auto& byte : raw) {
      byte = static_cast<std::uint8_t>(rng());
    }
    auto blob = crypto::SealedBlob::deserialize(raw);
    if (blob.is_ok()) {
      // Random bytes never authenticate under a fixed key.
      EXPECT_FALSE(crypto::unseal(key, *blob).is_ok());
    }
  }
}

}  // namespace
}  // namespace tytan
