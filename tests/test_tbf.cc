#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "tbf/tbf.h"

namespace tytan::tbf {
namespace {

isa::ObjectFile sample_object() {
  auto object = isa::assemble(R"(
      .secure
      .stack 128
      .bss 32
      .entry main
  main:
      li r1, data
      ldw r2, [r1]
      hlt
  data:
      .word main
  )");
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  return object.take();
}

TEST(Tbf, WriteReadRoundTrip) {
  const isa::ObjectFile original = sample_object();
  const ByteVec raw = write(original);
  auto parsed = read(raw);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->image, original.image);
  EXPECT_EQ(parsed->relocs, original.relocs);
  EXPECT_EQ(parsed->entry, original.entry);
  EXPECT_EQ(parsed->bss_size, original.bss_size);
  EXPECT_EQ(parsed->stack_size, original.stack_size);
  EXPECT_EQ(parsed->flags, original.flags);
  EXPECT_EQ(parsed->mailbox, original.mailbox);
  EXPECT_EQ(parsed->symbols, original.symbols);
}

TEST(Tbf, RejectsBadMagic) {
  ByteVec raw = write(sample_object());
  raw[0] ^= 0xFF;
  EXPECT_EQ(read(raw).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsHeaderCorruption) {
  ByteVec raw = write(sample_object());
  raw[8] ^= 0x01;  // image size field
  EXPECT_EQ(read(raw).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsTruncation) {
  const ByteVec raw = write(sample_object());
  for (const std::size_t cut : {std::size_t{10}, kHeaderSize + 2, raw.size() - 3}) {
    const ByteVec truncated(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(read(truncated).is_ok()) << "cut=" << cut;
  }
}

TEST(Tbf, RejectsEntryOutsideImage) {
  isa::ObjectFile object = sample_object();
  object.entry = static_cast<std::uint32_t>(object.image.size()) + 4;
  EXPECT_EQ(read(write(object)).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsRelocationOutsideImage) {
  isa::ObjectFile object = sample_object();
  object.relocs.push_back({static_cast<std::uint32_t>(object.image.size()),
                           isa::RelocKind::kAbs32, 0});
  EXPECT_EQ(read(write(object)).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsImageNotWordMultiple) {
  isa::ObjectFile object = sample_object();
  object.image.push_back(0x00);
  const auto parsed = read(write(object));
  EXPECT_EQ(parsed.status().code(), Err::kCorrupt);
  EXPECT_NE(parsed.status().to_string().find("instruction-aligned"),
            std::string::npos);
}

TEST(Tbf, DataOnlyObjectsMayHaveOddSizedImages) {
  isa::ObjectFile object = sample_object();
  object.image.push_back(0x00);
  object.flags |= isa::kObjDataOnly;
  object.relocs.clear();  // reloc offsets were computed for the aligned image
  EXPECT_TRUE(read(write(object)).is_ok());
}

TEST(Tbf, RejectsMisalignedEntry) {
  isa::ObjectFile object = sample_object();
  object.entry += 2;
  EXPECT_EQ(read(write(object)).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsMisalignedMsgHandler) {
  isa::ObjectFile object = sample_object();
  object.msg_handler = 2;
  EXPECT_EQ(read(write(object)).status().code(), Err::kCorrupt);
}

TEST(Tbf, RejectsMailboxOutsideImage) {
  isa::ObjectFile object = sample_object();
  object.mailbox = static_cast<std::uint32_t>(object.image.size()) - 4;
  const auto parsed = read(write(object));
  EXPECT_EQ(parsed.status().code(), Err::kCorrupt);
  EXPECT_NE(parsed.status().to_string().find("mailbox"), std::string::npos);
}

TEST(Tbf, RejectsMisalignedMailbox) {
  isa::ObjectFile object = sample_object();
  object.mailbox = 2;
  EXPECT_EQ(read(write(object)).status().code(), Err::kCorrupt);
}

TEST(Relocation, ApplyAndRevertAreInverse) {
  isa::ObjectFile object = sample_object();
  ByteVec image = object.image;
  ASSERT_TRUE(apply_relocations(object, image, 0x40000).is_ok());
  EXPECT_NE(image, object.image);
  for (const isa::Relocation& reloc : object.relocs) {
    revert_relocation(reloc, image);
  }
  EXPECT_EQ(image, object.image);
}

TEST(Relocation, Abs32PatchesFullWord) {
  ByteVec image(8, 0);
  const isa::Relocation reloc{4, isa::RelocKind::kAbs32, 0x100};
  apply_relocation(reloc, image, 0x20000);
  EXPECT_EQ(load_le32(image.data() + 4), 0x20100u);
}

TEST(Relocation, Lo16Hi16PatchOnlyImmediateField) {
  // An instruction word with opcode/reg bits that must survive patching.
  ByteVec image(8, 0);
  store_le32(image.data(), 0x0310'0000u);      // moviu r1, 0
  store_le32(image.data() + 4, 0x0410'0000u);  // movhi r1, 0
  apply_relocation({0, isa::RelocKind::kLo16, 0x1234}, image, 0x54320);
  apply_relocation({4, isa::RelocKind::kHi16, 0x1234}, image, 0x54320);
  // value = 0x1234 + 0x54320 = 0x55554.
  EXPECT_EQ(load_le32(image.data()) >> 16, 0x0310u);
  EXPECT_EQ(load_le32(image.data()) & 0xFFFF, 0x5554u);
  EXPECT_EQ(load_le32(image.data() + 4) & 0xFFFF, 0x5u);
}

TEST(Relocation, LoadedCodeIsPositionCorrect) {
  // End-to-end: assemble a program using li, relocate for two bases, and
  // check the materialized addresses differ by exactly the base delta.
  const isa::ObjectFile object = sample_object();
  ByteVec at_a = object.image;
  ByteVec at_b = object.image;
  ASSERT_TRUE(apply_relocations(object, at_a, 0x30000).is_ok());
  ASSERT_TRUE(apply_relocations(object, at_b, 0x70000).is_ok());
  // Find the li (first instruction of main).
  const std::uint32_t main_off = object.symbols.at("main");
  const std::uint32_t lo_a = load_le32(at_a.data() + main_off) & 0xFFFF;
  const std::uint32_t hi_a = load_le32(at_a.data() + main_off + 4) & 0xFFFF;
  const std::uint32_t lo_b = load_le32(at_b.data() + main_off) & 0xFFFF;
  const std::uint32_t hi_b = load_le32(at_b.data() + main_off + 4) & 0xFFFF;
  EXPECT_EQ(((hi_b << 16) | lo_b) - ((hi_a << 16) | lo_a), 0x40000u);
}

}  // namespace
}  // namespace tytan::tbf
