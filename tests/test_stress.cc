// Stress and capacity tests: many tasks, slot exhaustion, long runs,
// repeated load/unload churn, and heavy IPC traffic.
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

std::string yielder(int i) {
  return "    .secure\n    .stack 128\n    .entry main\nmain:\n"
         "    movi r0, 1\n    int 0x21\n    jmp main\n    .word " +
         std::to_string(i) + "\n";
}

TEST(Stress, EaMpuSlotExhaustionFailsCleanly) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::vector<rtos::TaskHandle> loaded;
  Status last = Status::ok();
  for (int i = 0; i < 20; ++i) {
    auto task = platform.load_task_source(yielder(i), {.name = "t" + std::to_string(i),
                                                       .auto_start = false});
    if (!task.is_ok()) {
      last = task.status();
      break;
    }
    loaded.push_back(*task);
  }
  // 12 static rules + 6 task slots = 18: the seventh task must fail with a
  // clean out-of-slots error, not a crash.
  EXPECT_EQ(loaded.size(), 6u);
  EXPECT_EQ(last.code(), Err::kOutOfMemory);

  // Unloading one frees capacity for exactly one more.
  ASSERT_TRUE(platform.unload_task(loaded.back()).is_ok());
  loaded.pop_back();
  auto again = platform.load_task_source(yielder(99), {.name = "again",
                                                       .auto_start = false});
  EXPECT_TRUE(again.is_ok()) << again.status().to_string();
}

TEST(Stress, LoadUnloadChurnLeaksNothing) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  const std::uint32_t free_before = platform.loader().arena().free_bytes();
  const std::size_t slots_before = platform.mpu().slots_in_use();
  for (int round = 0; round < 60; ++round) {
    auto task = platform.load_task_source(yielder(round),
                                          {.name = "churn" + std::to_string(round)});
    ASSERT_TRUE(task.is_ok()) << "round " << round;
    platform.run_for(50'000);
    ASSERT_TRUE(platform.unload_task(*task).is_ok()) << "round " << round;
  }
  EXPECT_EQ(platform.loader().arena().free_bytes(), free_before);
  EXPECT_EQ(platform.mpu().slots_in_use(), slots_before);
  EXPECT_EQ(platform.rtm().entries().size(), 0u);
}

TEST(Stress, SixTasksShareTheCpuFairly) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::vector<rtos::TaskHandle> tasks;
  for (int i = 0; i < 6; ++i) {
    auto task = platform.load_task_source(yielder(i),
                                          {.name = "fair" + std::to_string(i),
                                           .priority = 3});
    ASSERT_TRUE(task.is_ok());
    tasks.push_back(*task);
  }
  platform.run_for(8'000'000);
  std::uint64_t min_act = ~0ull;
  std::uint64_t max_act = 0;
  for (const auto handle : tasks) {
    const std::uint64_t a = platform.scheduler().get(handle)->activations;
    min_act = std::min(min_act, a);
    max_act = std::max(max_act, a);
  }
  EXPECT_GT(min_act, 50u);
  // Round-robin keeps the spread tight.
  EXPECT_LT(max_act - min_act, max_act / 2 + 10);
}

TEST(Stress, HeavyIpcTrafficAllDelivered) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  // Receiver counts messages in a register and echoes every 16th to serial.
  constexpr std::string_view kReceiver = R"(
      .secure
      .stack 256
      .entry main
      .msg on_msg
  main:
      movi r0, 8
      int  0x21
  h:  jmp h
  on_msg:
      movi r0, 9
      int  0x21
  h2: jmp h2
  )";
  auto receiver = platform.load_task_source(kReceiver, {.name = "sink", .priority = 2});
  ASSERT_TRUE(receiver.is_ok());
  platform.run_for(200'000);
  const rtos::TaskIdentity rid = platform.scheduler().get(*receiver)->identity;

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(platform.ipc_proxy()
                    .deliver(rtos::TaskIdentity{}, rid,
                             {static_cast<std::uint32_t>(i), 0, 0, 0}, false)
                    .is_ok())
        << "message " << i;
    platform.run_for(60'000);
  }
  EXPECT_EQ(platform.ipc_proxy().messages_delivered(), 200u);
  EXPECT_FALSE(platform.machine().halted());
}

TEST(Stress, LongRunStaysHealthy) {
  // A busy platform simulated for one full second of device time.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto a = platform.load_task_source(yielder(1), {.name = "a", .priority = 3});
  auto b = platform.load_task_source(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 2
      movi r1, 5
      int  0x21
      jmp  main
  )", {.name = "sleeper", .priority = 4});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  platform.run_for(sim::kClockHz);  // one simulated second
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_EQ(platform.kernel().fault_kills(), 0u);
  EXPECT_GT(platform.kernel().tick_count(), 900u);  // ~1000 ticks at 1 kHz
  EXPECT_GT(platform.scheduler().get(*a)->activations, 50'000u);
  const std::uint64_t sleeps = platform.scheduler().get(*b)->activations;
  EXPECT_GT(sleeps, 150u);   // ~200 wakeups at 5-tick period
  EXPECT_LT(sleeps, 260u);
}

TEST(Stress, ManyQueuesAndTimers) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto& queues = platform.kernel().queues();
  std::vector<rtos::QueueHandle> handles;
  for (int i = 0; i < 32; ++i) {
    auto q = queues.create(4);
    ASSERT_TRUE(q.is_ok());
    handles.push_back(*q);
  }
  for (const auto q : handles) {
    EXPECT_TRUE(queues.send(q, {1, 2, 3, 4}).is_ok());
  }
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(platform.kernel()
                    .timers()
                    .create_periodic(platform.kernel().tick_count() + 1 + i, 7,
                                     [&](rtos::TimerHandle) { ++fired; })
                    .is_ok());
  }
  platform.run_for(100 * platform.config().tick_period);
  EXPECT_GT(fired, 16 * 10);
  for (const auto q : handles) {
    EXPECT_TRUE(queues.receive(q).is_ok());
  }
}

}  // namespace
}  // namespace tytan
