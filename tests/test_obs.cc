// Observability layer: event bus, metrics, per-task cycle accounting,
// exporters, and the zero-overhead-when-off guarantee.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/log.h"
#include "core/platform.h"
#include "obs/event_bus.h"
#include "obs/export.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "obs/trace_reader.h"
#include "sim/tracer.h"

using namespace tytan;

namespace {

constexpr std::string_view kSecureSpinner = R"(
    .secure
    .stack 256
    .entry main
main:
    addi r5, 1
    jmp  main
)";

constexpr std::string_view kNormalSpinner = R"(
    .stack 256
    .entry main
main:
    addi r5, 1
    jmp  main
)";

}  // namespace

// ---------------------------------------------------------------------------
// EventBus
// ---------------------------------------------------------------------------

TEST(EventBus, DisabledEmitIsANoOp) {
  obs::EventBus bus;
  bus.emit(obs::EventKind::kSchedTick);
  EXPECT_EQ(bus.size(), 0u);
}

TEST(EventBus, StampsEventsFromTheWiredClock) {
  std::uint64_t clock = 0;
  obs::EventBus bus;
  bus.set_clock(&clock);
  bus.enable();
  clock = 123;
  bus.emit(obs::EventKind::kSchedDispatch, 2, 1, 5);
  clock = 456;
  bus.emit(obs::EventKind::kIrqEnter, 2, 0x20, 0x40000);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycle, 123u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kSchedDispatch);
  EXPECT_EQ(events[0].task, 2);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 5u);
  EXPECT_EQ(events[1].cycle, 456u);
}

TEST(EventBus, RingEvictsOldestAndCountsDrops) {
  obs::EventBus bus(4);
  bus.enable();
  for (std::uint32_t i = 0; i < 10; ++i) {
    bus.emit(obs::EventKind::kSchedTick, -1, i);
  }
  EXPECT_EQ(bus.size(), 4u);
  EXPECT_EQ(bus.dropped(), 6u);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);  // oldest surviving
  EXPECT_EQ(events.back().a, 9u);   // newest
}

TEST(EventBus, ZeroCapacityIsClampedToOne) {
  obs::EventBus bus(0);
  EXPECT_EQ(bus.capacity(), 1u);
  bus.enable();
  bus.emit(obs::EventKind::kSchedTick, -1, 1);
  bus.emit(obs::EventKind::kSchedTick, -1, 2);
  ASSERT_EQ(bus.size(), 1u);
  EXPECT_EQ(bus.snapshot().front().a, 2u);
}

TEST(EventBus, ListenerSeesEveryEventDespiteEviction) {
  obs::EventBus bus(2);
  bus.enable();
  std::size_t seen = 0;
  bus.set_listener([&](const obs::Event&) { ++seen; });
  for (int i = 0; i < 8; ++i) {
    bus.emit(obs::EventKind::kSchedTick);
  }
  EXPECT_EQ(seen, 8u);
  EXPECT_EQ(bus.size(), 2u);
}

TEST(EventKinds, NamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kNumEventKinds; ++i) {
    const auto kind = static_cast<obs::EventKind>(i);
    const std::string_view name = obs::kind_name(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(obs::kind_from_name(name), kind) << name;
  }
  EXPECT_EQ(obs::kind_from_name("no-such-kind"), obs::EventKind::kNumKinds);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Histogram h;
  h.observe(1);    // < 2^1 -> bucket 1
  h.observe(95);   // < 2^7 -> bucket 7
  h.observe(95);
  h.observe(1'000'000'000);  // beyond 2^23 -> overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1'000'000'000u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(7), 2u);
  EXPECT_EQ(h.bucket(obs::Histogram::kNumBuckets), 1u);
}

TEST(Metrics, PercentilesExactWhileDistinctValuesFit) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.observe(v);
  }
  EXPECT_TRUE(h.exact_percentiles());
  // Nearest-rank over 1..100: pXX is exactly XX.
  EXPECT_EQ(h.p50(), 50u);
  EXPECT_EQ(h.p95(), 95u);
  EXPECT_EQ(h.p99(), 99u);
  EXPECT_EQ(h.percentile(0.0), 1u);    // rank clamps to the first sample
  EXPECT_EQ(h.percentile(100.0), 100u);
}

TEST(Metrics, PercentilesFallBackToBucketsPastTheCap) {
  obs::Histogram h;
  // Exceed kMaxExactValues distinct values to force the approximate regime.
  for (std::uint64_t v = 0; v < obs::Histogram::kMaxExactValues + 10; ++v) {
    h.observe(v * 2 + 1);
  }
  EXPECT_FALSE(h.exact_percentiles());
  // Approximate percentiles are pow2 bucket upper bounds, clamped to max.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
  EXPECT_LE(h.p50(), h.p99());
}

TEST(Metrics, MergeEmptyIntoNonEmptyIsIdentity) {
  obs::Histogram a;
  a.observe(10);
  a.observe(20);
  obs::Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 20u);
  EXPECT_TRUE(a.exact_percentiles());
  // And the other direction: empty absorbs a's samples wholesale.
  obs::Histogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.sum(), 30u);
  EXPECT_EQ(b.p50(), 10u);
}

TEST(Metrics, MergePreservesOverflowBucketAndMax) {
  obs::Histogram a;
  a.observe(1'000'000'000);  // overflow bucket
  obs::Histogram b;
  b.observe(5);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.bucket(obs::Histogram::kNumBuckets), 1u);
  EXPECT_EQ(b.max(), 1'000'000'000u);
  EXPECT_EQ(b.p99(), 1'000'000'000u);  // exact map still holds both values
}

TEST(Metrics, MergeThenPercentileAgreesWithDirectObservation) {
  obs::Histogram split_a;
  obs::Histogram split_b;
  obs::Histogram whole;
  for (std::uint64_t v = 1; v <= 200; ++v) {
    (v % 2 == 0 ? split_a : split_b).observe(v * 3);
    whole.observe(v * 3);
  }
  split_a.merge(split_b);
  EXPECT_EQ(split_a.count(), whole.count());
  EXPECT_EQ(split_a.sum(), whole.sum());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(split_a.percentile(p), whole.percentile(p)) << "p" << p;
  }
}

TEST(Metrics, MergeExactnessIsStickyDown) {
  obs::Histogram approx;
  for (std::uint64_t v = 0; v < obs::Histogram::kMaxExactValues + 10; ++v) {
    approx.observe(v);
  }
  ASSERT_FALSE(approx.exact_percentiles());
  obs::Histogram exact;
  exact.observe(7);
  exact.merge(approx);
  EXPECT_FALSE(exact.exact_percentiles());
  EXPECT_EQ(exact.count(), obs::Histogram::kMaxExactValues + 11);
}

TEST(Metrics, MergeDisjointBucketRanges) {
  // All of `low` lands below bucket 4, all of `high` in bucket 17 — the
  // merged histogram must keep both populations apart bucket-wise and span
  // the full min..max range.
  obs::Histogram low;
  for (std::uint64_t v = 1; v <= 8; ++v) {
    low.observe(v);
  }
  obs::Histogram high;
  for (std::uint64_t v = 0; v < 8; ++v) {
    high.observe(100'000 + v);  // < 2^17
  }
  low.merge(high);
  EXPECT_EQ(low.count(), 16u);
  EXPECT_EQ(low.min(), 1u);
  EXPECT_EQ(low.max(), 100'007u);
  EXPECT_EQ(low.bucket(17), 8u);
  std::uint64_t below_16 = 0;
  for (std::size_t i = 0; i <= 4; ++i) {
    below_16 += low.bucket(i);
  }
  EXPECT_EQ(below_16, 8u);
  // Half the mass is small, so p50 stays in the low range and p95 jumps to
  // the high range — disjointness survives the merge.
  EXPECT_LE(low.p50(), 8u);
  EXPECT_GE(low.p95(), 100'000u);
}

TEST(Metrics, MergeOrderDoesNotChangeExactPercentiles) {
  obs::Histogram a;
  obs::Histogram b;
  for (std::uint64_t v = 1; v <= 60; ++v) {
    a.observe(v * 7);
  }
  for (std::uint64_t v = 1; v <= 40; ++v) {
    b.observe(v * 13);
  }
  obs::Histogram ab = a;
  ab.merge(b);
  obs::Histogram ba = b;
  ba.merge(a);
  ASSERT_TRUE(ab.exact_percentiles());
  ASSERT_TRUE(ba.exact_percentiles());
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.sum(), ba.sum());
  EXPECT_EQ(ab.p50(), ba.p50());
  EXPECT_EQ(ab.p95(), ba.p95());
  EXPECT_EQ(ab.p99(), ba.p99());
}

TEST(Metrics, RegistryMergeHandlesDisjointNames) {
  obs::MetricsRegistry a;
  a.counter("only.in.a").inc(2);
  a.histogram("hist.a").observe(10);
  obs::MetricsRegistry b;
  b.counter("only.in.b").inc(5);
  b.counter("only.in.a").inc(1);
  b.histogram("hist.b").observe(20);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("only.in.a")->value(), 3u);
  EXPECT_EQ(a.find_counter("only.in.b")->value(), 5u);
  EXPECT_EQ(a.find_histogram("hist.a")->count(), 1u);
  EXPECT_EQ(a.find_histogram("hist.b")->count(), 1u);
  EXPECT_EQ(a.find_histogram("hist.b")->sum(), 20u);
}

TEST(Metrics, MergeCreatesEveryInstrumentKindAbsentFromDestination) {
  // Fleet aggregation folds per-device registries into a destination that may
  // never have seen some instruments — merge_from must create them, not drop
  // them.  Cover all four kinds at once against a completely empty target.
  obs::MetricsRegistry source;
  source.counter("syscalls.total").inc(7);
  source.gauge("tasks.live").set(3);
  source.histogram("attest.roundtrip.cycles").observe(4096);
  obs::HeatProfile& heat = source.heat_profile("machine");
  heat.opcodes[0x12].count = 9;
  heat.blocks[0x40000] = {0x4000c, 2, 6};

  obs::MetricsRegistry dest;
  ASSERT_EQ(dest.find_counter("syscalls.total"), nullptr);
  dest.merge_from(source);
  ASSERT_NE(dest.find_counter("syscalls.total"), nullptr);
  EXPECT_EQ(dest.find_counter("syscalls.total")->value(), 7u);
  ASSERT_NE(dest.find_gauge("tasks.live"), nullptr);
  EXPECT_EQ(dest.find_gauge("tasks.live")->value(), 3);
  ASSERT_NE(dest.find_histogram("attest.roundtrip.cycles"), nullptr);
  EXPECT_EQ(dest.find_histogram("attest.roundtrip.cycles")->count(), 1u);
  EXPECT_EQ(dest.find_histogram("attest.roundtrip.cycles")->sum(), 4096u);
  ASSERT_NE(dest.find_heat_profile("machine"), nullptr);
  EXPECT_EQ(dest.find_heat_profile("machine")->opcodes[0x12].count, 9u);

  // Folding the same source again adds, it does not overwrite.
  dest.merge_from(source);
  EXPECT_EQ(dest.find_counter("syscalls.total")->value(), 14u);
  EXPECT_EQ(dest.find_gauge("tasks.live")->value(), 6);
  EXPECT_EQ(dest.find_histogram("attest.roundtrip.cycles")->count(), 2u);
  EXPECT_EQ(dest.find_heat_profile("machine")->blocks.at(0x40000).entries, 4u);
}

TEST(Metrics, HubMetricsFoldIntoFleetRegistryWithMissingCounters) {
  // The telemetry fold path: fleet aggregation flushes a device hub and
  // merges hub.metrics() into the fleet-level registry.  The device's
  // event-derived counters ("events.<kind>") do not exist in the destination
  // until the first fold; pre-existing destination instruments must survive.
  std::uint64_t clock = 100;
  obs::Hub hub;
  hub.set_clock(&clock);
  hub.enable();
  hub.emit(obs::EventKind::kSchedTick);
  hub.emit(obs::EventKind::kSchedTick);
  hub.emit(obs::EventKind::kCtxSave, 0, 120, 1);  // secure save, 120 cycles
  hub.flush();

  obs::MetricsRegistry fleet;
  fleet.counter("fleet.rounds").inc(5);
  ASSERT_EQ(fleet.find_counter("events.sched-tick"), nullptr);
  fleet.merge_from(hub.metrics());
  ASSERT_NE(fleet.find_counter("events.sched-tick"), nullptr);
  EXPECT_EQ(fleet.find_counter("events.sched-tick")->value(), 2u);
  ASSERT_NE(fleet.find_histogram("ctx_save.secure.cycles"), nullptr);
  EXPECT_EQ(fleet.find_histogram("ctx_save.secure.cycles")->count(), 1u);
  EXPECT_EQ(fleet.find_histogram("ctx_save.secure.cycles")->sum(), 120u);
  // The destination's own instruments are untouched by the fold.
  EXPECT_EQ(fleet.find_counter("fleet.rounds")->value(), 5u);
}

TEST(Metrics, FormatTableShowsPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("latency.cycles");
  h.observe(10);
  h.observe(20);
  h.observe(30);
  const std::string table = registry.format_table();
  EXPECT_NE(table.find("p50="), std::string::npos) << table;
  EXPECT_NE(table.find("p99="), std::string::npos) << table;
}

TEST(Metrics, RegistryHandsOutStableInstruments) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("events.total");
  c.inc(3);
  registry.counter("events.total").inc();
  EXPECT_EQ(registry.find_counter("events.total")->value(), 4u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  registry.gauge("sched.tick").set(7);
  EXPECT_EQ(registry.find_gauge("sched.tick")->value(), 7);
  const std::string table = registry.format_table();
  EXPECT_NE(table.find("events.total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Platform integration
// ---------------------------------------------------------------------------

TEST(Accounting, BooksBalanceToTheCycle) {
  core::Platform platform;
  obs::Hub& hub = platform.machine().obs();
  hub.enable();  // from cycle 0: boot + loads count as platform/task work
  ASSERT_TRUE(platform.boot().is_ok());
  auto sec = platform.load_task_source(kSecureSpinner, {.name = "sec"});
  auto norm = platform.load_task_source(kNormalSpinner, {.name = "norm"});
  ASSERT_TRUE(sec.is_ok() && norm.is_ok());
  platform.run_for(500'000);

  hub.flush();
  const obs::TaskAccounting& accounting = hub.accounting();
  EXPECT_EQ(accounting.accounted_cycles(), platform.machine().cycles());
  std::uint64_t sum = accounting.platform_cycles();
  for (const auto& [task, cycles] : accounting.tasks()) {
    sum += cycles.run + cycles.irq;
  }
  EXPECT_EQ(sum, platform.machine().cycles());
  // Both spinners actually ran and took interrupts (firmware tasks such as
  // the idle task may also appear — their dispatch quanta are accounted too).
  EXPECT_GE(accounting.tasks().size(), 2u);
  for (const rtos::TaskHandle handle : {*sec, *norm}) {
    const auto it = accounting.tasks().find(handle);
    ASSERT_NE(it, accounting.tasks().end()) << "task " << handle;
    EXPECT_GT(it->second.run, 0u) << "task " << handle;
    EXPECT_GT(it->second.irq, 0u) << "task " << handle;
  }
}

TEST(Events, SecureContextSaveCosts95CyclesPerTable2) {
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  platform.machine().obs().enable();
  ASSERT_TRUE(platform.load_task_source(kSecureSpinner, {.name = "sec"}).is_ok());
  platform.run_for(500'000);

  std::size_t saves = 0;
  std::size_t wipes = 0;
  for (const obs::Event& event : platform.machine().obs().bus().snapshot()) {
    if (event.kind == obs::EventKind::kCtxSave && event.b == 1) {
      EXPECT_EQ(event.a, 95u);  // store 38 + wipe 16 + branch 41
      ++saves;
    }
    if (event.kind == obs::EventKind::kCtxWipe) {
      EXPECT_EQ(event.a, 16u);
      ++wipes;
    }
  }
  EXPECT_GT(saves, 0u);
  EXPECT_EQ(saves, wipes);
}

TEST(Events, MetricsMirrorTheEventStream) {
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  obs::Hub& hub = platform.machine().obs();
  hub.enable();
  ASSERT_TRUE(platform.load_task_source(kSecureSpinner, {.name = "sec"}).is_ok());
  platform.run_for(500'000);

  const obs::Histogram* save = hub.metrics().find_histogram("ctx_save.secure.cycles");
  ASSERT_NE(save, nullptr);
  EXPECT_GT(save->count(), 0u);
  EXPECT_DOUBLE_EQ(save->mean(), 95.0);
  const obs::Counter* dispatches = hub.metrics().find_counter("events.sched-dispatch");
  ASSERT_NE(dispatches, nullptr);
  EXPECT_GT(dispatches->value(), 0u);
  const std::string summary = obs::export_metrics_summary(hub);
  EXPECT_NE(summary.find("ctx_save.secure.cycles"), std::string::npos);
  EXPECT_NE(summary.find("sec"), std::string::npos);  // accounting table row
}

TEST(Events, TracingOffLeavesCycleCountsBitIdentical) {
  auto run = [](bool traced) {
    core::Platform platform;
    if (traced) {
      platform.machine().obs().enable();
    }
    EXPECT_TRUE(platform.boot().is_ok());
    EXPECT_TRUE(platform.load_task_source(kSecureSpinner, {.name = "sec"}).is_ok());
    EXPECT_TRUE(platform.load_task_source(kNormalSpinner, {.name = "norm"}).is_ok());
    platform.run_for(300'000);
    return platform.machine().cycles();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, ChromeTraceRoundTripsThroughTheReader) {
  core::Platform platform;
  platform.machine().obs().enable();
  ASSERT_TRUE(platform.boot().is_ok());
  ASSERT_TRUE(platform.load_task_source(kSecureSpinner, {.name = "sec"}).is_ok());
  platform.run_for(300'000);

  obs::EventBus& bus = platform.machine().obs().bus();
  const std::string json = obs::export_chrome_trace(bus);
  auto trace = obs::parse_chrome_trace(json);
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  EXPECT_EQ(trace->events.size(), bus.snapshot().size());
  EXPECT_FALSE(trace->slices.empty());

  // Thread names: tid 1 = platform, the task's tid carries its name.
  EXPECT_EQ(trace->thread_names.at(1), "platform");
  bool named = false;
  for (const auto& [tid, name] : trace->thread_names) {
    named = named || name == "sec";
  }
  EXPECT_TRUE(named);

  // Payloads survive: find a secure ctx-save instant with a == 95.
  bool found = false;
  for (const obs::TraceInstant& ev : trace->events) {
    if (ev.name == "ctx-save" && ev.b == 1) {
      EXPECT_EQ(ev.a, 95u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Export, TimelineListsEventsInOrder) {
  std::uint64_t clock = 100;
  obs::EventBus bus;
  bus.set_clock(&clock);
  bus.enable();
  bus.set_task_name(0, "t0");
  bus.emit(obs::EventKind::kSchedDispatch, 0, 0, 3);
  const std::string timeline = obs::export_timeline(bus);
  EXPECT_NE(timeline.find("sched-dispatch"), std::string::npos);
  EXPECT_NE(timeline.find("[t0]"), std::string::npos);
  EXPECT_NE(timeline.find("100"), std::string::npos);
}

TEST(Export, ReaderRejectsGarbage) {
  EXPECT_FALSE(obs::parse_chrome_trace("not a trace").is_ok());
}

TEST(Export, MetricsSummarySurfacesEventBusDrops) {
  std::uint64_t clock = 0;
  obs::Hub hub(/*capacity=*/4);
  hub.set_clock(&clock);
  hub.enable();
  for (std::uint32_t i = 0; i < 10; ++i) {
    clock = i;
    hub.emit(obs::EventKind::kSchedTick, -1, i);
  }
  hub.flush();
  const std::string summary = obs::export_metrics_summary(hub);
  EXPECT_NE(summary.find("events recorded       4"), std::string::npos) << summary;
  EXPECT_NE(summary.find("events dropped        6"), std::string::npos) << summary;
  EXPECT_NE(summary.find("ring full"), std::string::npos) << summary;
}

TEST(Export, TraceMetadataCarriesDropCountsThroughTheReader) {
  std::uint64_t clock = 0;
  obs::EventBus bus(/*capacity=*/2);
  bus.set_clock(&clock);
  bus.enable();
  for (std::uint32_t i = 0; i < 5; ++i) {
    clock = i;
    bus.emit(obs::EventKind::kSchedTick, -1, i);
  }
  auto trace = obs::parse_chrome_trace(obs::export_chrome_trace(bus));
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  EXPECT_EQ(trace->recorded_events, 2u);
  EXPECT_EQ(trace->dropped_events, 3u);
}

TEST(Export, ProfilerSamplesRideAlongInTheTrace) {
  std::uint64_t clock = 50;
  obs::EventBus bus;
  bus.set_clock(&clock);
  bus.enable();
  bus.emit(obs::EventKind::kSchedDispatch, 1);

  obs::SampleProfiler profiler(1, 16);
  profiler.add_region(1, "hot", 0x1000, 0x100, {{"main", 0}});
  profiler.take(60, 0x1004, 1);
  auto trace = obs::parse_chrome_trace(obs::export_chrome_trace(bus, &profiler));
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  ASSERT_EQ(trace->samples.size(), 1u);
  EXPECT_EQ(trace->samples[0].cycle, 60u);
  EXPECT_EQ(trace->samples[0].pc, 0x1004u);
  EXPECT_EQ(trace->samples[0].task, 1);
  EXPECT_EQ(trace->samples[0].frame, "hot;main");
  // Samples are not event instants — the event list stays untouched.
  EXPECT_EQ(trace->events.size(), 1u);
}

// ---------------------------------------------------------------------------
// Satellites: tracer attribution + pluggable log sink
// ---------------------------------------------------------------------------

TEST(Tracer, ZeroCapacityIsClampedInsteadOfUndefined) {
  sim::Tracer tracer(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  tracer.record(1, 0x100, 0x42);
  tracer.record(2, 0x104, 0x43);  // would pop_front() an empty deque before
  const auto entries = tracer.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.front().cycle, 2u);
}

TEST(Tracer, EntriesCarryTaskAndMpuVerdict) {
  sim::Tracer tracer(8);
  tracer.record(10, 0x100, 0x42, "", 3, sim::Tracer::kVerdictAllowed);
  tracer.record(11, 0x104, 0x43, "", 3, sim::Tracer::kVerdictDenied);
  const std::string text = tracer.format();
  EXPECT_NE(text.find("[task 3]"), std::string::npos);
  EXPECT_NE(text.find("<exec denied>"), std::string::npos);
}

TEST(Log, SinkCapturesLinesAndRestores) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> lines;
  LogSink previous = set_log_sink(
      [&](LogLevel level, std::string_view tag, std::string_view message) {
        lines.push_back(std::string(log_level_name(level)) + " " + std::string(tag) +
                        ": " + std::string(message));
      });
  log_line(LogLevel::kInfo, "obs", "hello");
  log_line(LogLevel::kDebug, "obs", "filtered");  // below threshold
  set_log_sink(std::move(previous));
  set_log_level(old_level);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "INFO obs: hello");
}
