// Calibration regression suite: locks the exact reproduction of the paper's
// tables so a future cost-model or firmware change that silently shifts the
// published numbers fails CI instead of EXPERIMENTS.md going stale.
#include <gtest/gtest.h>

#include "core/platform.h"
#include "isa/stdlib.h"

namespace tytan {
namespace {

using core::Platform;

TEST(Calibration, Table2ContextSaveExact) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      jmp main
  )", {.name = "spin"});
  ASSERT_TRUE(task.is_ok());
  ASSERT_TRUE(platform.run_until(
      [&] { return platform.int_mux().last_save().secure; }, 10'000'000));
  const auto& save = platform.int_mux().last_save();
  EXPECT_EQ(save.store, 38u);   // paper Table 2: Store context
  EXPECT_EQ(save.wipe, 16u);    // Wipe registers
  EXPECT_EQ(save.branch, 41u);  // Branch
  EXPECT_EQ(save.total, 95u);   // Overall
}

TEST(Calibration, Table3ResumeComponents) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      jmp main
  )", {.name = "spin"});
  ASSERT_TRUE(task.is_ok());
  ASSERT_TRUE(platform.run_until(
      [&] { return platform.int_mux().last_resume().total > 0; }, 10'000'000));
  const auto& resume = platform.int_mux().last_resume();
  EXPECT_EQ(resume.branch, 106u);   // paper Table 3: Branch
  EXPECT_EQ(resume.restore, 254u);  // Restore
}

TEST(Calibration, Table6EaMpuConfigExact) {
  sim::Machine machine;
  hw::EaMpu mpu;
  core::EaMpuDriver driver(machine, mpu);
  auto check = [&](std::size_t position, std::uint64_t find, std::uint64_t overall) {
    // Occupy slots up to position-1.
    hw::EaMpu fresh;
    core::EaMpuDriver d(machine, fresh);
    for (std::size_t i = 0; i + 1 < position; ++i) {
      const auto base = static_cast<std::uint32_t>(0x40000 + i * 0x1000);
      ASSERT_TRUE(fresh.write_slot(i, {.code_start = base, .code_size = 16,
                                       .data_start = base, .data_size = 16,
                                       .perms = hw::kPermRead}).is_ok());
    }
    auto slot = d.configure({.code_start = 0x90000, .code_size = 16,
                             .data_start = 0x90000, .data_size = 16,
                             .perms = hw::kPermRead});
    ASSERT_TRUE(slot.is_ok());
    EXPECT_EQ(d.last_config().find, find) << "position " << position;
    EXPECT_EQ(d.last_config().policy, 824u);
    EXPECT_EQ(d.last_config().write, 225u);
    EXPECT_EQ(d.last_config().total, overall) << "position " << position;
  };
  check(1, 76, 1'125);    // paper Table 6 row 1
  check(2, 95, 1'144);    // row 2
  check(18, 399, 1'448);  // row 18
}

TEST(Calibration, Table7MeasurementModel) {
  // T = 4,300 + b*3,900 + 100 for b hash blocks with zero relocations.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  isa::ObjectFile object;
  object.image.assign(2 * 64 - 9, 0x90);  // exactly 2 SHA-1 blocks
  object.stack_size = 64;
  auto task = platform.load_task(std::move(object), {.name = "m", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  auto digest = platform.rtm().measure_now(*platform.scheduler().get(*task), {});
  ASSERT_TRUE(digest.is_ok());
  const auto& stats = platform.rtm().last_measure();
  EXPECT_EQ(stats.blocks, 2u);
  EXPECT_EQ(stats.setup + stats.hash + stats.finalize, 12'200u);  // paper: 12,200
}

TEST(Calibration, IpcProxyExact) {
  // The full sync IPC bench lands on the paper's 1,208 + 116 = 1,324; this
  // regression checks the calibrated components that produce it.
  const sim::CostModel costs;
  EXPECT_EQ(costs.ipc_proxy_base, 892u);
  EXPECT_EQ(costs.ipc_receiver_entry, 116u);
  EXPECT_EQ(costs.resume_branch, 106u);
  // proxy = base + 3 registry probes (sender lookup walks past the receiver
  // entry, receiver lookup hits first) + 6 copied words + branch to R
  EXPECT_EQ(costs.ipc_proxy_base + 3 * costs.ipc_registry_probe +
                6 * costs.ipc_copy_word + costs.resume_branch,
            1'208u);
}

TEST(Calibration, Table8FootprintsSumExactly) {
  const auto manifest = core::default_manifest();
  std::uint32_t total = 0;
  for (const auto& component : manifest) {
    total += component.footprint;
  }
  EXPECT_EQ(core::kFreeRtosFootprint + total, 249'943u);  // paper Table 8
  EXPECT_EQ(core::kFreeRtosFootprint, 215'617u);
}

TEST(Calibration, Table5RelocationSlope) {
  const sim::CostModel costs;
  EXPECT_EQ(costs.reloc_base, 37u);       // paper: 0 addresses -> 37
  EXPECT_EQ(costs.reloc_per_addr, 660u);  // paper slope ~660..680
}

}  // namespace
}  // namespace tytan
