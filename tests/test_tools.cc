// Integration test of the command-line tool chain (tytan-as, tytan-objdump):
// assemble a source file, load the produced TBF on a platform, run it, and
// inspect it with the dumper.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/platform.h"
#include "tbf/tbf.h"

#ifndef TYTAN_TOOL_DIR
#define TYTAN_TOOL_DIR "."
#endif

namespace tytan {
namespace {

std::string tool(const char* name) { return std::string(TYTAN_TOOL_DIR "/") + name; }

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Run a command, capture stdout, return exit status.
int run_command(const std::string& command, std::string* output) {
  const std::string redirected = command + " 2>&1";
  FILE* pipe = ::popen(redirected.c_str(), "r");
  if (pipe == nullptr) {
    return -1;
  }
  char buffer[512];
  output->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  return ::pclose(pipe);
}

constexpr std::string_view kSource = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, text
next:
    ldb  r1, [r2]
    cmpi r1, 0
    jz   done
    movi r0, 4
    int  0x21
    addi r2, 1
    jmp  next
done:
    movi r0, 3
    int  0x21
text:
    .ascii "tooling\0"
)";

TEST(Tools, AssembleLoadRunDump) {
  const std::string asm_path = tmp_path("task.s");
  const std::string tbf_path = tmp_path("task.tbf");
  {
    std::ofstream out(asm_path);
    out << kSource;
  }

  // tytan-as
  std::string output;
  const int as_status =
      run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output);
  ASSERT_EQ(as_status, 0) << output;
  EXPECT_NE(output.find("secure"), std::string::npos);

  // The produced file loads and runs.
  std::ifstream in(tbf_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const ByteVec raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto object = tbf::read(raw);
  ASSERT_TRUE(object.is_ok()) << object.status().to_string();

  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task(object.take(), {.name = "from-file", .priority = 3});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_until([&] { return platform.serial().output().size() >= 7; }, 30'000'000);
  EXPECT_EQ(platform.serial().output(), "tooling");

  // tytan-objdump
  const int dump_status = run_command(tool("tytan-objdump") + " " + tbf_path, &output);
  ASSERT_EQ(dump_status, 0) << output;
  EXPECT_NE(output.find("secure task"), std::string::npos);
  EXPECT_NE(output.find("__tytan_entry"), std::string::npos);
  EXPECT_NE(output.find("relocations"), std::string::npos);
  EXPECT_NE(output.find("cmpi r1, 1"), std::string::npos);  // prologue disassembly
}


TEST(Tools, TytanRunExecutesABinary) {
  const std::string asm_path = tmp_path("runnable.s");
  const std::string tbf_path = tmp_path("runnable.tbf");
  {
    std::ofstream out(asm_path);
    out << kSource;
  }
  std::string output;
  ASSERT_EQ(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output), 0)
      << output;
  const int status = run_command(
      tool("tytan-run") + " --cycles 5000000 --attest --trace 4 " + tbf_path, &output);
  ASSERT_EQ(status, 0) << output;
  EXPECT_NE(output.find("tooling"), std::string::npos);        // serial echoed
  EXPECT_NE(output.find("id_t="), std::string::npos);          // measurement shown
  EXPECT_NE(output.find("attestation report:"), std::string::npos);
  EXPECT_NE(output.find("last 4 instructions"), std::string::npos);
}

TEST(Tools, AssemblerErrorsPropagate) {
  const std::string asm_path = tmp_path("broken.s");
  {
    std::ofstream out(asm_path);
    out << "bogus r1, r2\n";
  }
  std::string output;
  const int status =
      run_command(tool("tytan-as") + " " + asm_path + " -o /dev/null", &output);
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("line 1"), std::string::npos);
}

TEST(Tools, ObjdumpRejectsGarbage) {
  const std::string path = tmp_path("garbage.tbf");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a TBF file at all";
  }
  std::string output;
  const int status = run_command(tool("tytan-objdump") + " " + path, &output);
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("TBF"), std::string::npos);
}

TEST(Tools, UsageOnBadArguments) {
  std::string output;
  EXPECT_NE(run_command(tool("tytan-as"), &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
  EXPECT_NE(run_command(tool("tytan-objdump"), &output), 0);
  EXPECT_NE(run_command(tool("tytan-lint"), &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
}

// ---------------------------------------------------------------------------
// tytan-lint golden corpus: four known-bad binaries, one rule each.  The
// porcelain output (RULE \t severity \t 0xOFFSET \t message) is the stable
// machine interface; tests pin the classification fields.
// ---------------------------------------------------------------------------

void write_tbf(const isa::ObjectFile& object, const std::string& path) {
  const ByteVec raw = tbf::write(object);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
}

isa::ObjectFile must_assemble(std::string_view source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  return object.take();
}

/// Lint `object` in porcelain mode; returns the output, expects exit != 0.
std::string lint_porcelain(const isa::ObjectFile& object, const char* name) {
  const std::string path = tmp_path(name);
  write_tbf(object, path);
  std::string output;
  const int status =
      run_command(tool("tytan-lint") + " --porcelain " + path, &output);
  EXPECT_NE(status, 0) << output;
  return output;
}

TEST(Lint, GoldenBadBranchTarget) {
  // jmp +0x60 out of a 16-byte image, hand-encoded.
  isa::ObjectFile object;
  append_le32(object.image, 0x3000'0060u);  // jmp +0x60
  append_le32(object.image, 0x0000'0000u);  // nop
  append_le32(object.image, 0x0000'0000u);  // nop
  append_le32(object.image, 0x4200'0000u);  // hlt
  const std::string output = lint_porcelain(object, "bad_branch.tbf");
  EXPECT_NE(output.find("CF002\terror\t0x0000\t"), std::string::npos) << output;
}

TEST(Lint, GoldenHi16WithoutLo16) {
  auto object = must_assemble(R"(
      .entry start
  start:
      li r2, start
      movi r0, 3
      int 0x21
  )");
  std::erase_if(object.relocs, [](const isa::Relocation& r) {
    return r.kind == isa::RelocKind::kLo16;
  });
  const std::string output = lint_porcelain(object, "torn_pair.tbf");
  EXPECT_NE(output.find("RL001\terror\t0x0004\t"), std::string::npos) << output;
}

TEST(Lint, GoldenStackOverflowByConstruction) {
  const auto object = must_assemble(R"(
      .stack 32
      .entry start
  start:
      subi sp, 64
      movi r0, 3
      int 0x21
  )");
  const std::string output = lint_porcelain(object, "stack_smash.tbf");
  EXPECT_NE(output.find("ST001\terror\t"), std::string::npos) << output;
}

TEST(Lint, GoldenMmioStoreFromUnprivilegedTask) {
  const auto object = must_assemble(R"(
      .entry start
  start:
      li r2, 0x100400
      movi r3, 9
      stw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const std::string output = lint_porcelain(object, "mmio_store.tbf");
  EXPECT_NE(output.find("MM001\terror\t0x000c\t"), std::string::npos) << output;
}

TEST(Lint, CleanBinaryExitsZeroAndHumanOutputHasContext) {
  const std::string asm_path = tmp_path("clean.s");
  const std::string tbf_path = tmp_path("clean.tbf");
  {
    std::ofstream out(asm_path);
    out << kSource;
  }
  std::string output;
  ASSERT_EQ(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output), 0)
      << output;
  ASSERT_EQ(run_command(tool("tytan-lint") + " " + tbf_path, &output), 0) << output;
  EXPECT_NE(output.find("0 error(s)"), std::string::npos) << output;

  // Human (non-porcelain) output on a bad binary shows disassembly context.
  isa::ObjectFile bad;
  append_le32(bad.image, 0x3000'0060u);
  append_le32(bad.image, 0x4200'0000u);
  write_tbf(bad, tmp_path("ctx.tbf"));
  EXPECT_NE(run_command(tool("tytan-lint") + " " + tmp_path("ctx.tbf"), &output), 0);
  EXPECT_NE(output.find("[ERROR CF002]"), std::string::npos) << output;
  EXPECT_NE(output.find(">"), std::string::npos) << output;  // marked instruction
  EXPECT_NE(output.find("jmp"), std::string::npos) << output;
}

TEST(Lint, SuppressAndStrictFlags) {
  // A warnings-only binary: indirect jump.
  const auto object = must_assemble(R"(
      .entry start
  start:
      movi r1, 0
      jmpr r1
  )");
  const std::string path = tmp_path("warn_only.tbf");
  write_tbf(object, path);
  std::string output;
  // Warnings alone do not fail the lint...
  EXPECT_EQ(run_command(tool("tytan-lint") + " " + path, &output), 0) << output;
  // ...unless --strict is given...
  EXPECT_NE(run_command(tool("tytan-lint") + " --strict " + path, &output), 0);
  // ...and --suppress DF002 silences the dataflow verdict entirely.
  EXPECT_EQ(run_command(
                tool("tytan-lint") + " --strict --suppress DF002 " + path, &output),
            0)
      << output;
  // With the dataflow pass off, the warning is the structural CF006 again.
  EXPECT_EQ(run_command(tool("tytan-lint") +
                            " --strict --no-dataflow --suppress CF006 " + path,
                        &output),
            0)
      << output;
  EXPECT_NE(run_command(tool("tytan-lint") + " --suppress NOPE " + path, &output), 0);
}

TEST(Lint, ResolvedJumpTableLintsCleanUnderStrict) {
  // The canonical jump-table idiom: CF006 under the seed pipeline, resolved
  // clean (info only) by the dataflow pass.
  const std::string asm_path = tmp_path("jump_table.s");
  {
    std::ofstream out(asm_path);
    out << ".entry main\n"
           "main:\n    andi r1, 1\n    shli r1, 2\n    li r2, table\n"
           "    add r2, r1\n    ldw r2, [r2]\n    jmpr r2\n"
           "a:\n    hlt\n"
           "b:\n    hlt\n"
           "table:\n    .word a, b\n";
  }
  std::string output;
  EXPECT_EQ(run_command(tool("tytan-lint") + " --strict " + asm_path, &output), 0)
      << output;
  EXPECT_NE(output.find("DF001"), std::string::npos) << output;
  EXPECT_NE(run_command(
                tool("tytan-lint") + " --strict --no-dataflow " + asm_path, &output),
            0)
      << output;
  EXPECT_NE(output.find("CF006"), std::string::npos) << output;
}

TEST(Lint, JsonReportShape) {
  const std::string asm_path = tmp_path("json_input.s");
  {
    std::ofstream out(asm_path);
    out << ".entry main\nmain:\n    jmpr r1\n";
  }
  std::string output;
  EXPECT_EQ(run_command(tool("tytan-lint") + " --json " + asm_path, &output), 0)
      << output;
  // Flat object, same style as `tytan-trace stats --json`.
  EXPECT_EQ(output.front(), '{') << output;
  EXPECT_NE(output.find("\"errors\": 0"), std::string::npos) << output;
  EXPECT_NE(output.find("\"warnings\": 1"), std::string::npos) << output;
  EXPECT_NE(output.find("\"indirect_sites\": 1"), std::string::npos) << output;
  EXPECT_NE(output.find("\"resolved_sites\": 0"), std::string::npos) << output;
  EXPECT_NE(output.find("\"pass_us\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"rules\": {\"DF002\": 1}"), std::string::npos) << output;
  EXPECT_NE(output.find("\"findings\": [{\"rule\": \"DF002\""), std::string::npos)
      << output;
  // --json and --porcelain are mutually exclusive: usage error.
  EXPECT_NE(run_command(
                tool("tytan-lint") + " --json --porcelain " + asm_path, &output),
            0);
}

TEST(Lint, CheckedFlagParsing) {
  const std::string asm_path = tmp_path("flags_input.s");
  {
    std::ofstream out(asm_path);
    out << ".entry main\nmain:\n    hlt\n";
  }
  std::string output;
  EXPECT_EQ(run_command(
                tool("tytan-lint") + " --max-targets 8 " + asm_path, &output),
            0)
      << output;
  // Garbage or missing values exit 2 (usage), not silently-zero configs.
  EXPECT_NE(run_command(
                tool("tytan-lint") + " --max-targets banana " + asm_path, &output),
            0);
  EXPECT_NE(output.find("--max-targets"), std::string::npos) << output;
  EXPECT_NE(run_command(tool("tytan-lint") + " " + asm_path + " --suppress", &output),
            0);
  EXPECT_NE(run_command(tool("tytan-lint") + " --bogus-flag " + asm_path, &output),
            0);
}

TEST(Lint, LintsAssemblySourceDirectly) {
  const std::string asm_path = tmp_path("direct.s");
  {
    std::ofstream out(asm_path);
    out << ".stack 32\n.entry start\nstart:\n    subi sp, 64\n    movi r0, 3\n    int 0x21\n";
  }
  std::string output;
  EXPECT_NE(run_command(tool("tytan-lint") + " --porcelain " + asm_path, &output), 0);
  EXPECT_NE(output.find("ST001"), std::string::npos) << output;
}

TEST(Lint, AssemblerStrictLintGate) {
  const std::string asm_path = tmp_path("gated.s");
  const std::string tbf_path = tmp_path("gated.tbf");
  {
    std::ofstream out(asm_path);
    out << ".stack 32\n.entry start\nstart:\n    subi sp, 64\n    movi r0, 3\n    int 0x21\n";
  }
  std::string output;
  // Default: warn on stderr but still assemble.
  ASSERT_EQ(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output), 0)
      << output;
  EXPECT_NE(output.find("lint"), std::string::npos) << output;
  // Strict: refuse to produce a binary.
  EXPECT_NE(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path +
                            " --strict-lint",
                        &output),
            0);
  EXPECT_NE(output.find("rejected by the static verifier"), std::string::npos) << output;
  // Opt-out: no lint output at all.
  ASSERT_EQ(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path +
                            " --no-lint",
                        &output),
            0);
  EXPECT_EQ(output.find("lint"), std::string::npos) << output;
}

// ------------------------------------------------------------ suite plumbing

constexpr const char* kAllTools[] = {"tytan-as",    "tytan-objdump", "tytan-lint",
                                     "tytan-run",   "tytan-fleet",   "tytan-trace",
                                     "tytan-top"};

/// Exit code from a run_command() wait status.
int exit_code(int status) { return WIFEXITED(status) ? WEXITSTATUS(status) : -1; }

TEST(Suite, VersionAndHelpExitZeroEverywhere) {
  for (const char* name : kAllTools) {
    std::string output;
    EXPECT_EQ(exit_code(run_command(tool(name) + " --version", &output)), 0) << name;
    EXPECT_NE(output.find("span-schema"), std::string::npos) << name << ": " << output;
    EXPECT_NE(output.find(name), std::string::npos) << name << ": " << output;
    EXPECT_EQ(exit_code(run_command(tool(name) + " --help", &output)), 0) << name;
    EXPECT_NE(output.find("usage:"), std::string::npos) << name << ": " << output;
  }
}

TEST(Suite, UnknownFlagsExitTwoEverywhere) {
  for (const char* name : kAllTools) {
    std::string output;
    // The bogus flag rides along with plausible positionals so every tool
    // reaches its flag loop rather than bailing on arity first.
    const std::string positional =
        std::string(name) == "tytan-trace" ? " stats /dev/null" : "";
    EXPECT_EQ(exit_code(run_command(
                  tool(name) + positional + " --definitely-not-a-flag", &output)),
              2)
        << name << ": " << output;
  }
}

TEST(Suite, EmptyJsonlInputsDiagnoseAndFail) {
  const std::string empty = tmp_path("empty.jsonl");
  { std::ofstream out(empty); }
  std::string output;
  EXPECT_EQ(exit_code(run_command(tool("tytan-top") + " " + empty, &output)), 1);
  EXPECT_NE(output.find("no telemetry records"), std::string::npos) << output;
  EXPECT_EQ(exit_code(run_command(tool("tytan-trace") + " spans " + empty, &output)),
            1);
  EXPECT_NE(output.find("no span records"), std::string::npos) << output;
  EXPECT_EQ(exit_code(run_command(tool("tytan-trace") + " slo " + empty +
                                      " --p99-cycles=100",
                                  &output)),
            1);
}

TEST(Suite, TruncatedJsonlInputsDiagnoseAndFail) {
  const std::string trunc = tmp_path("trunc.jsonl");
  {
    std::ofstream out(trunc);
    out << R"({"type":"span","device":1,"trace":1,"span":1,"par)";
  }
  std::string output;
  EXPECT_EQ(exit_code(run_command(tool("tytan-trace") + " spans " + trunc, &output)),
            1);
  EXPECT_NE(output.find("truncated"), std::string::npos) << output;
  const std::string garbage = tmp_path("garbage.jsonl");
  {
    std::ofstream out(garbage);
    out << "definitely not telemetry\n";
  }
  EXPECT_EQ(exit_code(run_command(tool("tytan-top") + " " + garbage, &output)), 1);
}

TEST(Suite, FleetSpansRoundTripThroughTrace) {
  const std::string spans = tmp_path("fleet_spans.jsonl");
  std::string output;
  ASSERT_EQ(exit_code(run_command(tool("tytan-fleet") +
                                      " --devices 2 --attest-sweeps 2 --spans-out " +
                                      spans,
                                  &output)),
            0)
      << output;
  EXPECT_NE(output.find("spans:"), std::string::npos) << output;
  ASSERT_EQ(exit_code(run_command(
                tool("tytan-trace") + " spans " + spans + " --phase=attest-round",
                &output)),
            0)
      << output;
  EXPECT_NE(output.find("attest-round"), std::string::npos) << output;
  // Generous budget passes; absurdly small budget breaches with exit 1.
  EXPECT_EQ(exit_code(run_command(tool("tytan-trace") + " slo " + spans +
                                      " --p99-cycles=100000000",
                                  &output)),
            0)
      << output;
  EXPECT_EQ(exit_code(run_command(
                tool("tytan-trace") + " slo " + spans + " --p99-cycles=1", &output)),
            1)
      << output;
  EXPECT_NE(output.find("SLO BREACH"), std::string::npos) << output;
}

}  // namespace
}  // namespace tytan
