// Integration test of the command-line tool chain (tytan-as, tytan-objdump):
// assemble a source file, load the produced TBF on a platform, run it, and
// inspect it with the dumper.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/platform.h"
#include "tbf/tbf.h"

#ifndef TYTAN_TOOL_DIR
#define TYTAN_TOOL_DIR "."
#endif

namespace tytan {
namespace {

std::string tool(const char* name) { return std::string(TYTAN_TOOL_DIR "/") + name; }

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Run a command, capture stdout, return exit status.
int run_command(const std::string& command, std::string* output) {
  const std::string redirected = command + " 2>&1";
  FILE* pipe = ::popen(redirected.c_str(), "r");
  if (pipe == nullptr) {
    return -1;
  }
  char buffer[512];
  output->clear();
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  return ::pclose(pipe);
}

constexpr std::string_view kSource = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, text
next:
    ldb  r1, [r2]
    cmpi r1, 0
    jz   done
    movi r0, 4
    int  0x21
    addi r2, 1
    jmp  next
done:
    movi r0, 3
    int  0x21
text:
    .ascii "tooling\0"
)";

TEST(Tools, AssembleLoadRunDump) {
  const std::string asm_path = tmp_path("task.s");
  const std::string tbf_path = tmp_path("task.tbf");
  {
    std::ofstream out(asm_path);
    out << kSource;
  }

  // tytan-as
  std::string output;
  const int as_status =
      run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output);
  ASSERT_EQ(as_status, 0) << output;
  EXPECT_NE(output.find("secure"), std::string::npos);

  // The produced file loads and runs.
  std::ifstream in(tbf_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const ByteVec raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto object = tbf::read(raw);
  ASSERT_TRUE(object.is_ok()) << object.status().to_string();

  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task(object.take(), {.name = "from-file", .priority = 3});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_until([&] { return platform.serial().output().size() >= 7; }, 30'000'000);
  EXPECT_EQ(platform.serial().output(), "tooling");

  // tytan-objdump
  const int dump_status = run_command(tool("tytan-objdump") + " " + tbf_path, &output);
  ASSERT_EQ(dump_status, 0) << output;
  EXPECT_NE(output.find("secure task"), std::string::npos);
  EXPECT_NE(output.find("__tytan_entry"), std::string::npos);
  EXPECT_NE(output.find("relocations"), std::string::npos);
  EXPECT_NE(output.find("cmpi r1, 1"), std::string::npos);  // prologue disassembly
}


TEST(Tools, TytanRunExecutesABinary) {
  const std::string asm_path = tmp_path("runnable.s");
  const std::string tbf_path = tmp_path("runnable.tbf");
  {
    std::ofstream out(asm_path);
    out << kSource;
  }
  std::string output;
  ASSERT_EQ(run_command(tool("tytan-as") + " " + asm_path + " -o " + tbf_path, &output), 0)
      << output;
  const int status = run_command(
      tool("tytan-run") + " --cycles 5000000 --attest --trace 4 " + tbf_path, &output);
  ASSERT_EQ(status, 0) << output;
  EXPECT_NE(output.find("tooling"), std::string::npos);        // serial echoed
  EXPECT_NE(output.find("id_t="), std::string::npos);          // measurement shown
  EXPECT_NE(output.find("attestation report:"), std::string::npos);
  EXPECT_NE(output.find("last 4 instructions"), std::string::npos);
}

TEST(Tools, AssemblerErrorsPropagate) {
  const std::string asm_path = tmp_path("broken.s");
  {
    std::ofstream out(asm_path);
    out << "bogus r1, r2\n";
  }
  std::string output;
  const int status =
      run_command(tool("tytan-as") + " " + asm_path + " -o /dev/null", &output);
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("line 1"), std::string::npos);
}

TEST(Tools, ObjdumpRejectsGarbage) {
  const std::string path = tmp_path("garbage.tbf");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a TBF file at all";
  }
  std::string output;
  const int status = run_command(tool("tytan-objdump") + " " + path, &output);
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("TBF"), std::string::npos);
}

TEST(Tools, UsageOnBadArguments) {
  std::string output;
  EXPECT_NE(run_command(tool("tytan-as"), &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
  EXPECT_NE(run_command(tool("tytan-objdump"), &output), 0);
}

}  // namespace
}  // namespace tytan
