#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/status.h"

namespace tytan {
namespace {

TEST(Bytes, LittleEndianRoundTrip) {
  std::uint8_t buf[8] = {};
  store_le32(buf, 0xdeadbeef);
  EXPECT_EQ(load_le32(buf), 0xdeadbeefu);
  store_le16(buf, 0xbeef);
  EXPECT_EQ(load_le16(buf), 0xbeef);
  store_le64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0xef);  // little endian: LSB first
}

TEST(Bytes, AppendHelpers) {
  ByteVec out;
  append_le16(out, 0x1122);
  append_le32(out, 0x33445566);
  append_le64(out, 0x778899aabbccddeeull);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(load_le16(out.data()), 0x1122);
  EXPECT_EQ(load_le32(out.data() + 2), 0x33445566u);
  EXPECT_EQ(load_le64(out.data() + 6), 0x778899aabbccddeeull);
}

TEST(Bytes, HexRoundTrip) {
  const ByteVec data = {0xde, 0xad, 0x00, 0xff};
  EXPECT_EQ(hex_encode(data), "dead00ff");
  EXPECT_EQ(hex_decode("dead00ff"), data);
  EXPECT_EQ(hex_decode("DEAD00FF"), data);
}

TEST(Bytes, HexDecodeRejectsMalformed) {
  EXPECT_TRUE(hex_decode("abc").empty());   // odd length
  EXPECT_TRUE(hex_decode("zz").empty());    // non-hex
}

TEST(Bytes, ConstantTimeEqual) {
  const ByteVec a = {1, 2, 3};
  const ByteVec b = {1, 2, 3};
  const ByteVec c = {1, 2, 4};
  const ByteVec d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Ranges, Overlap) {
  EXPECT_TRUE(ranges_overlap(0, 10, 5, 10));
  EXPECT_TRUE(ranges_overlap(5, 10, 0, 10));
  EXPECT_TRUE(ranges_overlap(0, 10, 2, 2));
  EXPECT_FALSE(ranges_overlap(0, 10, 10, 5));  // adjacent, not overlapping
  EXPECT_FALSE(ranges_overlap(10, 5, 0, 10));
  EXPECT_FALSE(ranges_overlap(0, 0, 0, 10));   // empty never overlaps
}

TEST(Ranges, Contains) {
  EXPECT_TRUE(range_contains(0, 10, 0, 10));
  EXPECT_TRUE(range_contains(0, 10, 2, 3));
  EXPECT_FALSE(range_contains(0, 10, 8, 3));
  EXPECT_TRUE(range_contains(0, 10, 10, 0));  // empty at end is inside
}

TEST(Status, FormatsErrorAndMessage) {
  const Status s = make_error(Err::kPermissionDenied, "no access");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "permission-denied: no access");
  EXPECT_EQ(Status::ok().to_string(), "ok");
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = make_error(Err::kNotFound, "nope");
  ASSERT_FALSE(err.is_ok());
  EXPECT_EQ(err.status().code(), Err::kNotFound);
  EXPECT_THROW(err.value(), std::logic_error);
}

TEST(Result, ConstructingFromOkStatusIsInternalError) {
  Result<int> bad = Status::ok();
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), Err::kInternal);
}

}  // namespace
}  // namespace tytan
