// EFLAGS semantics: carry/overflow edges, flag preservation across
// interrupts and iret, and conditional-branch truth tables.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/devices.h"
#include "sim/machine.h"

namespace tytan::sim {
namespace {

constexpr std::uint32_t kCodeBase = 0x40000;
constexpr std::uint32_t kStackTop = 0x48000;

CpuState run(std::string_view source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kCodeBase + object->entry;
  machine.cpu().set_sp(kStackTop);
  machine.run(1'000'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  return machine.cpu();
}

TEST(Flags, AddCarryOnUnsignedWrap) {
  const CpuState cpu = run(R"(
      li   r1, 0xFFFFFFFF
      addi r1, 1            ; wraps to 0: Z and C set, V clear
      jc   carry
      movi r5, 0
      hlt
  carry:
      jz   both
      movi r5, 1
      hlt
  both:
      movi r5, 2
      hlt
  )");
  EXPECT_EQ(cpu.regs[5], 2u);
}

TEST(Flags, SignedOverflowOnIntMax) {
  const CpuState cpu = run(R"(
      li   r1, 0x7FFFFFFF
      addi r1, 1            ; INT_MAX + 1: V set, N set, C clear
      jlt  took_jlt         ; jlt = N xor V = false here
      movi r5, 1
      hlt
  took_jlt:
      movi r5, 0
      hlt
  )");
  // N=1, V=1 -> N xor V = 0 -> jlt NOT taken.
  EXPECT_EQ(cpu.regs[5], 1u);
}

TEST(Flags, SubBorrowSetsCarry) {
  const CpuState cpu = run(R"(
      movi r1, 3
      subi r1, 5            ; borrow: C set, N set
      jc   borrowed
      movi r5, 0
      hlt
  borrowed:
      movi r5, 1
      hlt
  )");
  EXPECT_EQ(cpu.regs[5], 1u);
}

TEST(Flags, CmpDoesNotWriteRegister) {
  const CpuState cpu = run(R"(
      movi r1, 7
      cmpi r1, 100
      hlt
  )");
  EXPECT_EQ(cpu.regs[1], 7u);
}

TEST(Flags, LogicOpsClearNothingButZN) {
  // Set C via a borrow, then AND: Z/N update, C must survive (logic ops do
  // not touch C/V in this ISA).
  const CpuState cpu = run(R"(
      movi r1, 0
      subi r1, 1            ; C set (borrow), r1 = 0xFFFFFFFF
      movi r2, 0
      and  r2, r1           ; Z set
      jc   c_survived
      movi r5, 0
      hlt
  c_survived:
      movi r5, 1
      hlt
  )");
  EXPECT_EQ(cpu.regs[5], 1u);
}

TEST(Flags, IretRestoresFlags) {
  // The handler clobbers flags; iret must restore the interrupted state.
  auto object = isa::assemble(R"(
      movi r1, 5
      cmpi r1, 5            ; Z set
      int  0x21             ; handler destroys flags
      jz   preserved        ; Z must still be set after iret
      movi r5, 0
      hlt
  preserved:
      movi r5, 1
      hlt
  handler:
      movi r2, 1
      cmpi r2, 2            ; Z clear, C set inside the handler
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecSyscall, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  machine.run(100'000);
  EXPECT_EQ(machine.cpu().regs[5], 1u);
}

TEST(Flags, InterruptLeavesFlagsIntactForTheTask) {
  // A timer interrupt between cmp and the conditional branch must not change
  // the branch decision (hardware saves EFLAGS; iret restores it).
  auto object = isa::assemble(R"(
      sti
      movi r3, 0
  loop:
      movi r1, 9
      cmpi r1, 9            ; Z set
      nop
      nop
      jz   good
      movi r5, 0
      hlt
  good:
      addi r3, 1
      cmpi r3, 500
      jnz  loop
      movi r5, 1
      hlt
  handler:
      movi r2, 7
      cmpi r2, 8            ; clobber flags in the handler
      iret
  )");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  auto timer = std::make_shared<TimerDevice>();
  timer->set_irq_sink([&machine](std::uint8_t v) { machine.raise_irq(v); });
  machine.bus().attach(timer);
  machine.memory().write_block(kCodeBase, object->image);
  machine.set_idt_entry(kVecTimer, kCodeBase + object->symbols.at("handler"));
  machine.cpu().eip = kCodeBase;
  machine.cpu().set_sp(kStackTop);
  timer->write32(TimerDevice::kPeriod, 97);  // prime: lands at every loop offset
  timer->write32(TimerDevice::kCtrl, 1);
  machine.run(2'000'000);
  ASSERT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  EXPECT_EQ(machine.cpu().regs[5], 1u);
  EXPECT_GT(machine.interrupts_dispatched(), 50u);
}

TEST(Flags, JgeIsComplementOfJlt) {
  for (const auto& [a, b] : std::vector<std::pair<std::int32_t, std::int32_t>>{
           {5, 3}, {3, 5}, {-5, 3}, {3, -5}, {-3, -5}, {7, 7}}) {
    std::string source;
    source += "    li r1, " + std::to_string(static_cast<std::uint32_t>(a)) + "\n";
    source += "    li r2, " + std::to_string(static_cast<std::uint32_t>(b)) + "\n";
    source += R"(
        cmp r1, r2
        jge ge
        movi r5, 0
        hlt
    ge:
        movi r5, 1
        hlt
    )";
    EXPECT_EQ(run(source).regs[5], a >= b ? 1u : 0u) << a << " >= " << b;
  }
}

}  // namespace
}  // namespace tytan::sim
