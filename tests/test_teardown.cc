// Host-side teardown of the *running* task: unload, suspend, and update must
// leave the machine on a valid task (regression for a bug the chaos soak
// found: the CPU kept executing the wiped region).
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

constexpr std::string_view kSpinner = R"(
    .secure
    .stack 128
    .entry main
main:
    addi r5, 1
    jmp  main
)";

rtos::TaskHandle current_after_warmup(Platform& platform, rtos::TaskHandle task) {
  // Run until the task is the one actually executing.
  platform.run_until(
      [&] { return platform.scheduler().current_handle() == task; }, 5'000'000);
  return platform.scheduler().current_handle();
}

TEST(Teardown, UnloadRunningTaskKeepsPlatformAlive) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "victim", .priority = 4});
  ASSERT_TRUE(task.is_ok());
  ASSERT_EQ(current_after_warmup(platform, *task), *task);

  ASSERT_TRUE(platform.unload_task(*task).is_ok());
  platform.run_for(500'000);
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_EQ(platform.kernel().fault_kills(), 0u);  // no stray fetch faults
  EXPECT_GT(platform.kernel().tick_count(), 0u);
}

TEST(Teardown, SuspendRunningTaskRestartsFreshOnResume) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "spin", .priority = 4});
  ASSERT_TRUE(task.is_ok());
  ASSERT_EQ(current_after_warmup(platform, *task), *task);

  ASSERT_TRUE(platform.suspend_task(*task).is_ok());
  platform.run_for(500'000);
  EXPECT_FALSE(platform.machine().halted());
  const std::uint64_t activations = platform.scheduler().get(*task)->activations;
  platform.run_for(500'000);
  EXPECT_EQ(platform.scheduler().get(*task)->activations, activations);  // parked

  // Documented semantics: a live-suspended secure task restarts fresh.
  ASSERT_TRUE(platform.resume_task(*task).is_ok());
  platform.run_for(500'000);
  EXPECT_GT(platform.scheduler().get(*task)->activations, activations);
  EXPECT_FALSE(platform.machine().halted());
}

TEST(Teardown, UpdateRunningTaskSwitchesCleanly) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(kSpinner, {.name = "svc", .priority = 4});
  ASSERT_TRUE(v1.is_ok());
  ASSERT_EQ(current_after_warmup(platform, *v1), *v1);

  std::string v2(kSpinner);
  v2.replace(v2.find("addi r5, 1"), 10, "addi r5, 2");
  auto updated = platform.update_task(*v1, v2, {.name = "svc2", .priority = 4});
  ASSERT_TRUE(updated.is_ok()) << updated.status().to_string();
  platform.run_for(1'000'000);
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_GT(platform.scheduler().get(*updated)->activations, 0u);
}

TEST(Teardown, UnloadIdleCurrentIsHarmless) {
  // Unloading a task that is NOT current must not trigger a reschedule storm.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kSpinner, {.name = "parked", .priority = 2,
                                                   .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  platform.run_for(200'000);
  ASSERT_TRUE(platform.unload_task(*task).is_ok());
  platform.run_for(200'000);
  EXPECT_FALSE(platform.machine().halted());
}

}  // namespace
}  // namespace tytan
