// MMIO devices, the bus, and the tracer.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/devices.h"
#include "sim/machine.h"

namespace tytan::sim {
namespace {

TEST(TimerDevice, DisabledTimerNeverFires) {
  TimerDevice timer;
  int fired = 0;
  timer.set_irq_sink([&](std::uint8_t) { ++fired; });
  timer.write32(TimerDevice::kPeriod, 100);
  timer.tick(10'000);
  EXPECT_EQ(fired, 0);
}

TEST(TimerDevice, FiresOncePerPeriodAndCatchesUp) {
  TimerDevice timer;
  int fired = 0;
  timer.set_irq_sink([&](std::uint8_t v) {
    EXPECT_EQ(v, kVecTimer);
    ++fired;
  });
  timer.write32(TimerDevice::kPeriod, 100);
  timer.write32(TimerDevice::kCtrl, 1);
  timer.tick(99);
  EXPECT_EQ(fired, 0);
  timer.tick(100);
  EXPECT_EQ(fired, 1);
  timer.tick(350);  // catches up: deadlines 200, 300
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(timer.ticks_fired(), 3u);
}

TEST(TimerDevice, DisableStopsFiring) {
  TimerDevice timer;
  int fired = 0;
  timer.set_irq_sink([&](std::uint8_t) { ++fired; });
  timer.write32(TimerDevice::kPeriod, 10);
  timer.write32(TimerDevice::kCtrl, 1);
  timer.tick(10);
  timer.write32(TimerDevice::kCtrl, 0);
  timer.tick(1'000);
  EXPECT_EQ(fired, 1);
}

TEST(TimerDevice, RegistersReadBack) {
  TimerDevice timer;
  timer.write32(TimerDevice::kPeriod, 4242);
  EXPECT_EQ(timer.read32(TimerDevice::kPeriod), 4242u);
  EXPECT_EQ(timer.read32(TimerDevice::kCtrl), 0u);
  timer.write32(TimerDevice::kCtrl, 1);
  EXPECT_EQ(timer.read32(TimerDevice::kCtrl), 1u);
}

TEST(TimerDevice, ZeroPeriodNeverEnables) {
  TimerDevice timer;
  int fired = 0;
  timer.set_irq_sink([&](std::uint8_t) { ++fired; });
  timer.write32(TimerDevice::kCtrl, 1);  // period still 0
  timer.tick(100'000);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(timer.enabled());
}

TEST(SerialConsole, CapturesBytesAndReportsReady) {
  SerialConsole serial;
  serial.write32(SerialConsole::kData, 'o');
  serial.write32(SerialConsole::kData, 'k');
  EXPECT_EQ(serial.output(), "ok");
  EXPECT_EQ(serial.read32(SerialConsole::kStatus), 1u);
  serial.clear();
  EXPECT_TRUE(serial.output().empty());
}

TEST(SensorDevice, CountsReadsAndIgnoresWrites) {
  SensorDevice sensor("pedal", kMmioPedal);
  sensor.set_value(33);
  sensor.set_value2(44);
  EXPECT_EQ(sensor.read32(0), 33u);
  EXPECT_EQ(sensor.read32(4), 44u);
  sensor.write32(0, 99);
  EXPECT_EQ(sensor.read32(0), 33u);  // read-only
  EXPECT_EQ(sensor.reads(), 2u);     // offset-4 reads don't count
}

TEST(EngineActuator, TimestampsCommands) {
  EngineActuator engine;
  engine.tick(100);
  engine.write32(0, 7);
  engine.tick(250);
  engine.write32(0, 9);
  ASSERT_EQ(engine.commands().size(), 2u);
  EXPECT_EQ(engine.commands()[0].cycle, 100u);
  EXPECT_EQ(engine.commands()[1].value, 9u);
  EXPECT_EQ(engine.read32(0), 9u);  // latest command reads back
}

TEST(RngDevice, DeterministicPerSeedAndNonRepeating) {
  RngDevice a(123);
  RngDevice b(123);
  RngDevice c(456);
  const std::uint32_t a1 = a.read32(0);
  const std::uint32_t a2 = a.read32(0);
  EXPECT_EQ(a1, b.read32(0));
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, c.read32(0));
}

TEST(MmioBus, RejectsOverlappingDevices) {
  MmioBus bus;
  bus.attach(std::make_shared<TimerDevice>());
  EXPECT_THROW(bus.attach(std::make_shared<TimerDevice>()), std::logic_error);
}

TEST(MmioBus, FindsDeviceByAddress) {
  MmioBus bus;
  auto timer = std::make_shared<TimerDevice>();
  bus.attach(timer);
  EXPECT_EQ(bus.find(kMmioTimer + 4), timer.get());
  EXPECT_EQ(bus.find(kMmioSerial), nullptr);
}

TEST(Machine, UnmappedMmioIsBusError) {
  Machine machine;
  auto object = isa::assemble(R"(
      li  r1, 0x100800      ; inside the MMIO window, no device
      ldw r2, [r1]
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(0x40000, object->image);
  machine.cpu().eip = 0x40000;
  machine.cpu().set_sp(0x48000);
  machine.run(1'000);
  EXPECT_EQ(machine.last_fault().type, FaultType::kBusError);
}

TEST(Machine, MisalignedMmioIsBusError) {
  Machine machine;
  machine.bus().attach(std::make_shared<SerialConsole>());
  auto object = isa::assemble(R"(
      li  r1, 0x100102      ; serial DATA + 2: misaligned word access
      ldw r2, [r1]
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(0x40000, object->image);
  machine.cpu().eip = 0x40000;
  machine.cpu().set_sp(0x48000);
  machine.run(1'000);
  EXPECT_EQ(machine.last_fault().type, FaultType::kBusError);
}

TEST(Tracer, RecordsLastInstructionsWithDisassembly) {
  Machine machine;
  machine.enable_trace(4);
  auto object = isa::assemble(R"(
      movi r0, 1
      movi r1, 2
      movi r2, 3
      movi r3, 4
      movi r4, 5
      hlt
  )");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(0x40000, object->image);
  machine.cpu().eip = 0x40000;
  machine.run(1'000);
  const auto entries = machine.tracer()->snapshot();
  ASSERT_EQ(entries.size(), 4u);  // ring capacity
  EXPECT_EQ(entries.front().eip, 0x40008u);  // oldest kept: movi r2, 3
  EXPECT_EQ(entries.back().eip, 0x40014u);   // hlt
  const std::string dump = machine.tracer()->format();
  EXPECT_NE(dump.find("movi r4, 5"), std::string::npos);
  EXPECT_NE(dump.find("hlt"), std::string::npos);
}

TEST(Tracer, RecordsFirmwareEntries) {
  Machine machine;
  machine.enable_trace(8);
  machine.register_firmware(kFwOsKernel, "probe", [](Machine& m) {
    m.cpu().eip = 0x40000;
  });
  auto object = isa::assemble("hlt\n");
  ASSERT_TRUE(object.is_ok());
  machine.memory().write_block(0x40000, object->image);
  machine.cpu().eip = kFwOsKernel;
  machine.run(1'000);
  const std::string dump = machine.tracer()->format();
  EXPECT_NE(dump.find("[firmware: probe]"), std::string::npos);
}

}  // namespace
}  // namespace tytan::sim
