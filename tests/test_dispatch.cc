// Dispatch-mode differential suite: the decoded basic-block cache must be
// bit-identical to the reference interpreter on every simulated quantity at
// every step.  Each scenario runs two machines in lockstep — one per
// DispatchMode — and compares registers, EIP, EFLAGS, cycles, instructions,
// and the fault stream after every single step().  This doubles as the
// decode-cache regression corpus: interrupt/fault edge paths, self-modifying
// code, firmware collisions, and fuzzed instruction words all ride through
// both paths.
#include <gtest/gtest.h>

#include <initializer_list>
#include <map>
#include <memory>
#include <random>
#include <string>

#include "isa/assembler.h"
#include "sim/decode_cache.h"
#include "sim/devices.h"
#include "sim/machine.h"

namespace tytan::sim {
namespace {

constexpr std::uint32_t kCodeBase = 0x40000;
constexpr std::uint32_t kStackTop = 0x48000;

/// Assemble `source`, apply the minimal bare-test relocations, load it into
/// `machine` at kCodeBase, and return the symbol table (label -> offset).
std::map<std::string, std::uint32_t> load_program(Machine& machine,
                                                  std::string_view source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  if (!object.is_ok()) {
    return {};
  }
  ByteVec image = object->image;
  for (const isa::Relocation& reloc : object->relocs) {
    const std::uint32_t value = reloc.addend + kCodeBase;
    std::uint8_t* site = image.data() + reloc.offset;
    switch (reloc.kind) {
      case isa::RelocKind::kAbs32: store_le32(site, value); break;
      case isa::RelocKind::kLo16:
        store_le32(site, (load_le32(site) & 0xFFFF0000u) | (value & 0xFFFF));
        break;
      case isa::RelocKind::kHi16:
        store_le32(site, (load_le32(site) & 0xFFFF0000u) | (value >> 16));
        break;
    }
  }
  machine.memory().write_block(kCodeBase, image);
  machine.cpu().eip = kCodeBase + object->entry;
  machine.cpu().set_sp(kStackTop);
  return object->symbols;
}

/// Step both machines once and compare every piece of simulated state.
/// Returns false once both machines halt (or on divergence, after failing).
bool lockstep_once(Machine& interp, Machine& cached, std::uint64_t step) {
  const StepOutcome a = interp.step();
  const StepOutcome b = cached.step();
  EXPECT_EQ(a, b) << "step outcome diverged at step " << step;
  EXPECT_EQ(interp.cpu().eip, cached.cpu().eip) << "EIP diverged at step " << step;
  EXPECT_EQ(interp.cpu().eflags, cached.cpu().eflags)
      << "EFLAGS diverged at step " << step;
  for (std::size_t r = 0; r < isa::kNumGprs; ++r) {
    EXPECT_EQ(interp.cpu().regs[r], cached.cpu().regs[r])
        << "r" << r << " diverged at step " << step;
  }
  EXPECT_EQ(interp.cycles(), cached.cycles()) << "cycles diverged at step " << step;
  EXPECT_EQ(interp.instructions_executed(), cached.instructions_executed())
      << "instructions diverged at step " << step;
  EXPECT_EQ(interp.fault_count(), cached.fault_count())
      << "fault count diverged at step " << step;
  EXPECT_EQ(interp.last_fault().type, cached.last_fault().type)
      << "fault type diverged at step " << step;
  EXPECT_EQ(interp.halted(), cached.halted()) << "halt diverged at step " << step;
  if (::testing::Test::HasFailure()) {
    return false;
  }
  return !(interp.halted() && cached.halted());
}

struct IdtBinding {
  std::uint8_t vector;
  const char* label;  ///< symbol the vector's handler lives at
};

/// Run `source` through both dispatch modes in lockstep for up to `steps`.
void differential(std::string_view source, std::uint64_t steps = 20'000,
                  std::initializer_list<IdtBinding> idt = {}) {
  auto interp_ptr = std::make_unique<Machine>();
  auto cached_ptr = std::make_unique<Machine>();
  Machine& interp = *interp_ptr;
  Machine& cached = *cached_ptr;
  interp.set_dispatch_mode(DispatchMode::kInterpreter);
  cached.set_dispatch_mode(DispatchMode::kCached);
  const auto symbols = load_program(interp, source);
  load_program(cached, source);
  for (const IdtBinding& binding : idt) {
    ASSERT_TRUE(symbols.contains(binding.label)) << binding.label;
    const std::uint32_t handler = kCodeBase + symbols.at(binding.label);
    interp.set_idt_entry(binding.vector, handler);
    cached.set_idt_entry(binding.vector, handler);
  }
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!lockstep_once(interp, cached, i)) {
      break;
    }
  }
  // The cached leg must actually have exercised the cache, or the test
  // proves nothing about it.
  EXPECT_GT(cached.decode_cache().stats().builds + cached.decode_cache().stats().hits,
            0u);
}

TEST(Dispatch, StraightLineArithmetic) {
  differential(R"(
      movi r0, 10
      addi r0, 5
      movi r1, 3
      sub  r0, r1
      movi r2, 4
      mul  r2, r0
      li   r3, 0xdeadbeef
      hlt
  )");
}

TEST(Dispatch, LoopsAndBranches) {
  differential(R"(
      movi r0, 0
      movi r1, 200
  loop:
      addi r0, 1
      cmp  r0, r1
      jlt  loop
      movi r2, 0
  down:
      addi r2, 3
      cmpi r2, 600
      jnz  down
      hlt
  )");
}

TEST(Dispatch, MemoryTraffic) {
  differential(R"(
      li   r2, data
      movi r0, 0
  loop:
      ldw  r3, [r2]
      addi r3, 1
      stw  r3, [r2]
      ldb  r4, [r2+1]
      stb  r4, [r2+2]
      addi r0, 1
      cmpi r0, 300
      jnz  loop
      hlt
  data:
      .word 0x01020304
  )");
}

TEST(Dispatch, CallRetAndJumpTable) {
  differential(R"(
      movi r5, 0
  main:
      call bump
      addi r1, 1
      andi r1, 3
      shli r1, 2
      li   r2, table
      add  r2, r1
      ldw  r2, [r2]
      shri r1, 2
      jmpr r2
  case0:
      jmp  next
  case1:
      jmp  next
  case2:
      jmp  next
  case3:
      jmp  next
  next:
      cmpi r5, 500
      jnz  main
      hlt
  bump:
      addi r5, 1
      ret
  table:
      .word case0, case1, case2, case3
  )");
}

TEST(Dispatch, SoftwareInterruptRoundTrip) {
  differential(R"(
      sti
      movi r5, 0
  loop:
      int  0x21
      cmpi r5, 50
      jnz  loop
      hlt
  handler:
      addi r5, 1
      iret
  )",
               20'000, {{kVecSyscall, "handler"}});
}

TEST(Dispatch, SelfModifyingCodeInvalidates) {
  // The loop body overwrites its own next instruction: first pass stores a
  // `movi r6, 7` word over the `movi r6, 1` site, so the second pass must
  // decode the NEW word.  The interpreter re-fetches naturally; the cache
  // must observe the store through the write watch and rebuild.
  differential(R"(
      li   r1, patch_site
      li   r2, patched_word
      ldw  r3, [r2]       ; r3 = encoding of "movi r6, 7"
      movi r0, 0
  loop:
      stw  r3, [r1]       ; overwrite the instruction below
  patch_site:
      movi r6, 1          ; becomes "movi r6, 7" after the first pass
      addi r0, 1
      cmpi r0, 20
      jnz  loop
      hlt
  patched_word:
      movi r6, 7          ; never executed here; fetched as data
  )");
}

TEST(Dispatch, FaultHandlerAtNextInstruction) {
  differential(R"(
      li   r1, 0x200000
      ldw  r2, [r1]       ; bus error; handler is the next instruction
  handler:
      movi r6, 99
      hlt
  )",
               1'000, {{kVecFault, "handler"}});
}

TEST(Dispatch, IretWithCorruptedStack) {
  // The handler clobbers SP before IRET, so the frame pops fault.  Both
  // modes must walk the identical fault path.
  differential(R"(
      sti
      int  0x21
      hlt
  handler:
      movi r7, 3          ; corrupt SP; iret pops fault
      iret
      hlt
  )",
               1'000, {{kVecSyscall, "handler"}});
}

TEST(Dispatch, IrqDeliveryWindowsIdentical) {
  // A periodic timer IRQ must land on exactly the same instruction boundary
  // in both modes — one-instruction-per-step is part of the contract.
  const char* source = R"(
      sti
  spin:
      addi r0, 1
      jmp  spin
  handler:
      addi r5, 1
      cmpi r5, 5
      jz   done
      iret
  done:
      hlt
  )";
  auto interp_ptr = std::make_unique<Machine>();
  auto cached_ptr = std::make_unique<Machine>();
  Machine& interp = *interp_ptr;
  Machine& cached = *cached_ptr;
  interp.set_dispatch_mode(DispatchMode::kInterpreter);
  cached.set_dispatch_mode(DispatchMode::kCached);
  for (Machine* m : {&interp, &cached}) {
    auto timer = std::make_shared<TimerDevice>();
    timer->set_irq_sink([m](std::uint8_t v) { m->raise_irq(v); });
    m->bus().attach(timer);
    const auto symbols = load_program(*m, source);
    m->set_idt_entry(kVecTimer, kCodeBase + symbols.at("handler"));
    timer->write32(TimerDevice::kPeriod, 137);
    timer->write32(TimerDevice::kCtrl, 1);
  }
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    if (!lockstep_once(interp, cached, i)) {
      break;
    }
  }
  EXPECT_EQ(cached.cpu().regs[5], 5u);
}

TEST(Dispatch, FirmwareCollisionWithCachedBlock) {
  // Register a firmware entry point at an address already inside a cached
  // block: the registration must invalidate the cache so the fast path can
  // never step over the firmware hook.
  auto interp_ptr = std::make_unique<Machine>();
  auto cached_ptr = std::make_unique<Machine>();
  Machine& interp = *interp_ptr;
  Machine& cached = *cached_ptr;
  interp.set_dispatch_mode(DispatchMode::kInterpreter);
  cached.set_dispatch_mode(DispatchMode::kCached);
  const char* source = R"(
      movi r0, 0
  loop:
      addi r0, 1
  hook_site:
      nop
      nop
      cmpi r0, 10
      jnz  loop
      hlt
  )";
  const auto symbols = load_program(interp, source);
  load_program(cached, source);
  // Warm both machines through a few iterations (the cache builds blocks
  // spanning the nops), then drop a firmware hook onto the first nop.
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(lockstep_once(interp, cached, i));
  }
  const std::uint32_t hook = kCodeBase + symbols.at("hook_site");
  int interp_calls = 0;
  int cached_calls = 0;
  interp.register_firmware(hook, "hook", [&](Machine& m) {
    ++interp_calls;
    m.charge(3);
    m.cpu().eip = hook + isa::kInstrSize;
  });
  cached.register_firmware(hook, "hook", [&](Machine& m) {
    ++cached_calls;
    m.charge(3);
    m.cpu().eip = hook + isa::kInstrSize;
  });
  for (std::uint64_t i = 12; i < 2'000; ++i) {
    if (!lockstep_once(interp, cached, i)) {
      break;
    }
  }
  EXPECT_GT(cached_calls, 0);
  EXPECT_EQ(interp_calls, cached_calls);
}

TEST(Dispatch, FuzzedWordsFaultIdentically) {
  // Pseudo-random instruction words (fixed seed): most decode to garbage or
  // fault mid-execution.  Both modes must produce the identical fault
  // stream.  The machine is re-seeded every round so fault halts don't end
  // the corpus early.
  std::mt19937 rng(0xC0FFEE);
  for (int round = 0; round < 40; ++round) {
    auto interp_ptr = std::make_unique<Machine>();
    auto cached_ptr = std::make_unique<Machine>();
    Machine& interp = *interp_ptr;
    Machine& cached = *cached_ptr;
    interp.set_dispatch_mode(DispatchMode::kInterpreter);
    cached.set_dispatch_mode(DispatchMode::kCached);
    for (Machine* m : {&interp, &cached}) {
      m->cpu().eip = kCodeBase;
      m->cpu().set_sp(kStackTop);
      m->set_idt_entry(kVecFault, kCodeBase + 0x1000);
    }
    std::mt19937 words(rng());  // same stream into both machines
    for (std::uint32_t off = 0; off < 0x80; off += 4) {
      const std::uint32_t word = words();
      interp.memory().write32(kCodeBase + off, word);
      cached.memory().write32(kCodeBase + off, word);
      // A plausible handler body at the fault vector target: iret.
      interp.memory().write32(kCodeBase + 0x1000 + off, 0x41000000u);
      cached.memory().write32(kCodeBase + 0x1000 + off, 0x41000000u);
    }
    for (std::uint64_t i = 0; i < 500; ++i) {
      if (!lockstep_once(interp, cached, i)) {
        break;
      }
    }
    ASSERT_FALSE(::testing::Test::HasFailure()) << "diverged in round " << round;
  }
}

TEST(Dispatch, CacheStatsAndInvalidation) {
  // Direct decode-cache behavior: hits accumulate on re-execution, and
  // invalidate_decode_cache() drops every block.
  auto machine_ptr = std::make_unique<Machine>();
  Machine& machine = *machine_ptr;
  machine.set_dispatch_mode(DispatchMode::kCached);
  load_program(machine, R"(
      movi r0, 0
  loop:
      addi r0, 1
      cmpi r0, 50
      jnz  loop
      hlt
  )");
  machine.run(10'000);
  const DecodeCache::Stats& stats = machine.decode_cache().stats();
  EXPECT_GT(stats.builds, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(machine.decode_cache().block_count(), 0u);
  machine.invalidate_decode_cache();
  EXPECT_EQ(machine.decode_cache().block_count(), 0u);
}

}  // namespace
}  // namespace tytan::sim
