// Scheduler, queue, and software-timer logic (pure RTOS layer, no machine).
#include <gtest/gtest.h>

#include "rtos/queue.h"
#include "rtos/scheduler.h"
#include "rtos/timers.h"

namespace tytan::rtos {
namespace {

TaskHandle make_task(Scheduler& sched, const std::string& name, unsigned priority) {
  auto handle = sched.create({.name = name, .priority = priority});
  EXPECT_TRUE(handle.is_ok());
  sched.make_ready(*handle);
  return *handle;
}

TEST(Scheduler, HighestPriorityWins) {
  Scheduler sched;
  const TaskHandle low = make_task(sched, "low", 1);
  const TaskHandle high = make_task(sched, "high", 5);
  EXPECT_EQ(sched.pick_next(), high);
  ASSERT_TRUE(sched.dispatch(high).is_ok());
  EXPECT_EQ(sched.current_handle(), high);
  EXPECT_EQ(sched.pick_next(), low);
}

TEST(Scheduler, RoundRobinWithinPriority) {
  Scheduler sched;
  const TaskHandle a = make_task(sched, "a", 3);
  const TaskHandle b = make_task(sched, "b", 3);
  ASSERT_TRUE(sched.dispatch(sched.pick_next()).is_ok());
  EXPECT_EQ(sched.current_handle(), a);
  sched.preempt_current();  // a goes to the back
  ASSERT_TRUE(sched.dispatch(sched.pick_next()).is_ok());
  EXPECT_EQ(sched.current_handle(), b);
  sched.preempt_current();
  EXPECT_EQ(sched.pick_next(), a);
}

TEST(Scheduler, DelayUnblocksOnTick) {
  Scheduler sched;
  const TaskHandle t = make_task(sched, "t", 2);
  ASSERT_TRUE(sched.dispatch(t).is_ok());
  ASSERT_TRUE(sched.delay_until(t, sched.tick_count() + 3).is_ok());
  EXPECT_EQ(sched.get(t)->state, TaskState::kBlocked);
  EXPECT_EQ(sched.current_handle(), kNoTask);
  sched.tick();
  sched.tick();
  EXPECT_EQ(sched.get(t)->state, TaskState::kBlocked);
  sched.tick();
  EXPECT_EQ(sched.get(t)->state, TaskState::kReady);
}

TEST(Scheduler, TickReportsPreemptionNeed) {
  Scheduler sched;
  const TaskHandle low = make_task(sched, "low", 1);
  ASSERT_TRUE(sched.dispatch(low).is_ok());
  const TaskHandle high = make_task(sched, "high", 6);
  ASSERT_TRUE(sched.delay_until(high, sched.tick_count() + 1).is_ok());
  EXPECT_TRUE(sched.tick());  // high woke and outranks low
}

TEST(Scheduler, SuspendResume) {
  Scheduler sched;
  const TaskHandle t = make_task(sched, "t", 2);
  ASSERT_TRUE(sched.suspend(t).is_ok());
  EXPECT_EQ(sched.pick_next(), kNoTask);
  EXPECT_FALSE(sched.resume(t).is_ok() == false);  // resume succeeds
  EXPECT_EQ(sched.pick_next(), t);
  // Resuming a non-suspended task is an error.
  EXPECT_FALSE(sched.resume(t).is_ok());
}

TEST(Scheduler, DestroyRemovesFromReady) {
  Scheduler sched;
  const TaskHandle t = make_task(sched, "t", 2);
  ASSERT_TRUE(sched.destroy(t).is_ok());
  EXPECT_EQ(sched.pick_next(), kNoTask);
  EXPECT_EQ(sched.get(t), nullptr);
  EXPECT_FALSE(sched.destroy(t).is_ok());
}

TEST(Scheduler, HandleReuseAfterDeath) {
  Scheduler sched;
  const TaskHandle t = make_task(sched, "t", 2);
  ASSERT_TRUE(sched.destroy(t).is_ok());
  const TaskHandle u = make_task(sched, "u", 2);
  EXPECT_EQ(u, t);  // dead slot reused
  EXPECT_EQ(sched.get(u)->name, "u");
}

TEST(Scheduler, RejectsBadParams) {
  Scheduler sched;
  EXPECT_FALSE(sched.create({.name = "", .priority = 1}).is_ok());
  EXPECT_FALSE(sched.create({.name = "x", .priority = kNumPriorities}).is_ok());
}

TEST(Scheduler, HigherPriorityReady) {
  Scheduler sched;
  const TaskHandle low = make_task(sched, "low", 1);
  ASSERT_TRUE(sched.dispatch(low).is_ok());
  EXPECT_FALSE(sched.higher_priority_ready());
  make_task(sched, "high", 4);
  EXPECT_TRUE(sched.higher_priority_ready());
}

TEST(Queue, SendReceiveFifo) {
  QueueSet queues;
  auto q = queues.create(2);
  ASSERT_TRUE(q.is_ok());
  EXPECT_TRUE(queues.send(*q, {1, 2, 3, 4}).is_ok());
  EXPECT_TRUE(queues.send(*q, {5, 6, 7, 8}).is_ok());
  EXPECT_EQ(queues.send(*q, {9, 9, 9, 9}).code(), Err::kUnavailable);  // full
  auto item = queues.receive(*q);
  ASSERT_TRUE(item.is_ok());
  EXPECT_EQ((*item)[0], 1u);
  EXPECT_EQ(*queues.depth(*q), 1u);
}

TEST(Queue, EmptyReceiveFails) {
  QueueSet queues;
  auto q = queues.create(1);
  EXPECT_EQ(queues.receive(*q).status().code(), Err::kUnavailable);
}

TEST(Queue, WaiterBookkeeping) {
  QueueSet queues;
  auto q = queues.create(1);
  queues.add_waiter_recv(*q, 7);
  queues.add_waiter_recv(*q, 9);
  EXPECT_EQ(queues.pop_waiter_recv(*q), 7);
  EXPECT_EQ(queues.pop_waiter_recv(*q), 9);
  EXPECT_EQ(queues.pop_waiter_recv(*q), kNoTask);
}

TEST(Queue, DestroyInvalidatesHandle) {
  QueueSet queues;
  auto q = queues.create(1);
  ASSERT_TRUE(queues.destroy(*q).is_ok());
  EXPECT_FALSE(queues.send(*q, {}).is_ok());
}

TEST(Timers, OneShotFiresOnce) {
  TimerService timers;
  int fired = 0;
  ASSERT_TRUE(timers.create_oneshot(5, [&](TimerHandle) { ++fired; }).is_ok());
  EXPECT_EQ(timers.advance(4), 0u);
  EXPECT_EQ(timers.advance(5), 1u);
  EXPECT_EQ(timers.advance(100), 0u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.active_count(), 0u);
}

TEST(Timers, PeriodicFiresRepeatedlyAndCatchesUp) {
  TimerService timers;
  int fired = 0;
  ASSERT_TRUE(timers.create_periodic(2, 3, [&](TimerHandle) { ++fired; }).is_ok());
  EXPECT_EQ(timers.advance(2), 1u);
  EXPECT_EQ(timers.advance(11), 3u);  // deadlines 5, 8, 11
  EXPECT_EQ(fired, 4);
}

TEST(Timers, CancelFromCallback) {
  TimerService timers;
  int fired = 0;
  auto handle = timers.create_periodic(1, 1, [&](TimerHandle h) {
    ++fired;
    timers.cancel(h);
  });
  ASSERT_TRUE(handle.is_ok());
  timers.advance(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.active_count(), 0u);
}

TEST(Timers, CancelUnknownFails) {
  TimerService timers;
  EXPECT_FALSE(timers.cancel(3).is_ok());
}

}  // namespace
}  // namespace tytan::rtos
