// Verifier-side infrastructure: manufacturer provisioning, golden database,
// and the anti-replay challenge protocol — driven end-to-end against real
// devices (simulated platforms).
#include <gtest/gtest.h>

#include "core/platform.h"
#include "verifier/verifier.h"

namespace tytan {
namespace {

using core::Platform;
using verifier::Challenger;
using verifier::GoldenDatabase;
using verifier::Manufacturer;
using verifier::VerifyOutcome;

std::string firmware(unsigned version) {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    movi r0, 2
    movi r1, )" + std::to_string(10 + version) + R"(
    int  0x21
    jmp  main
)";
}

struct Deployment {
  Manufacturer manufacturer;
  GoldenDatabase db;
  std::unique_ptr<Platform> device;
  verifier::DeviceId device_id = 0;
  rtos::TaskHandle task = rtos::kNoTask;

  void bring_up(unsigned deployed_version, unsigned released_versions) {
    device_id = manufacturer.provision_device();
    Platform::Config config;
    config.kp = *manufacturer.device_kp(device_id);
    device = std::make_unique<Platform>(config);
    ASSERT_TRUE(device->boot().is_ok());
    for (unsigned v = 1; v <= released_versions; ++v) {
      auto object = isa::assemble(firmware(v));
      ASSERT_TRUE(object.is_ok());
      db.add_release("ecu-fw", v, *object);
    }
    auto handle = device->load_task_source(firmware(deployed_version),
                                           {.name = "fw", .auto_start = false});
    ASSERT_TRUE(handle.is_ok());
    task = *handle;
  }

  core::AttestationReport attest(std::uint64_t nonce) {
    auto report = device->remote_attest().attest_task(task, nonce);
    EXPECT_TRUE(report.is_ok());
    return *report;
  }
};

TEST(Manufacturer, DistinctKeysPerDevice) {
  Manufacturer manufacturer;
  const auto a = manufacturer.provision_device();
  const auto b = manufacturer.provision_device();
  EXPECT_NE(*manufacturer.device_kp(a), *manufacturer.device_kp(b));
  EXPECT_NE(*manufacturer.attestation_key(a), *manufacturer.attestation_key(b));
  EXPECT_FALSE(manufacturer.device_kp(999).is_ok());
}


TEST(Manufacturer, DeterministicPerSeed) {
  // The provisioning ladder is reproducible: two manufacturers with the same
  // seed issue identical device keys (HSM escrow / disaster recovery).
  Manufacturer m1(0xABCD);
  Manufacturer m2(0xABCD);
  Manufacturer m3(0xABCE);
  const auto d1 = m1.provision_device();
  const auto d2 = m2.provision_device();
  const auto d3 = m3.provision_device();
  EXPECT_EQ(*m1.device_kp(d1), *m2.device_kp(d2));
  EXPECT_NE(*m1.device_kp(d1), *m3.device_kp(d3));
}

TEST(GoldenDb, MatchesDeviceMeasurements) {
  Deployment deployment;
  deployment.bring_up(/*deployed=*/2, /*released=*/3);
  // The golden identity (computed offline) equals what the device's RTM
  // measured after load + relocation.
  const rtos::TaskIdentity device_id_t =
      deployment.device->scheduler().get(deployment.task)->identity;
  const verifier::Release* release = deployment.db.find(device_id_t);
  ASSERT_NE(release, nullptr);
  EXPECT_EQ(release->version, 2u);
  EXPECT_EQ(deployment.db.latest("ecu-fw")->version, 3u);
}

TEST(Challenger, VerifiesLatestRelease) {
  Deployment deployment;
  deployment.bring_up(/*deployed=*/3, /*released=*/3);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  const std::uint64_t nonce = challenger.issue_challenge();
  const auto outcome = challenger.verify(deployment.attest(nonce), "ecu-fw");
  EXPECT_TRUE(outcome.ok()) << verify_outcome_name(outcome.code);
  ASSERT_NE(outcome.release, nullptr);
  EXPECT_EQ(outcome.release->version, 3u);
}

TEST(Challenger, FlagsStaleVersion) {
  Deployment deployment;
  deployment.bring_up(/*deployed=*/1, /*released=*/3);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  const std::uint64_t nonce = challenger.issue_challenge();
  const auto outcome = challenger.verify(deployment.attest(nonce), "ecu-fw");
  EXPECT_EQ(outcome.code, VerifyOutcome::Code::kStale);
  ASSERT_NE(outcome.release, nullptr);
  EXPECT_EQ(outcome.release->version, 1u);
}

TEST(Challenger, RejectsReplay) {
  Deployment deployment;
  deployment.bring_up(2, 2);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  const std::uint64_t nonce = challenger.issue_challenge();
  const auto report = deployment.attest(nonce);
  EXPECT_TRUE(challenger.verify(report, "ecu-fw").ok());
  // Replaying the same (valid!) report fails: the challenge is consumed.
  EXPECT_EQ(challenger.verify(report, "ecu-fw").code,
            VerifyOutcome::Code::kUnknownChallenge);
}

TEST(Challenger, RejectsForeignNonce) {
  Deployment deployment;
  deployment.bring_up(2, 2);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  challenger.issue_challenge();
  const auto report = deployment.attest(0x1234);  // self-chosen nonce
  EXPECT_EQ(challenger.verify(report, "ecu-fw").code,
            VerifyOutcome::Code::kUnknownChallenge);
}

TEST(Challenger, RejectsWrongDeviceKey) {
  Deployment deployment;
  deployment.bring_up(2, 2);
  const auto other_device = deployment.manufacturer.provision_device();
  // Verifier holds the wrong device's Ka.
  Challenger challenger(*deployment.manufacturer.attestation_key(other_device),
                        deployment.db);
  const std::uint64_t nonce = challenger.issue_challenge();
  EXPECT_EQ(challenger.verify(deployment.attest(nonce), "ecu-fw").code,
            VerifyOutcome::Code::kBadMac);
}

TEST(Challenger, RejectsUnknownBinary) {
  Deployment deployment;
  deployment.bring_up(2, 2);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  // Deploy a binary that was never released.
  auto rogue = deployment.device->load_task_source(firmware(9), {.name = "rogue",
                                                                 .auto_start = false});
  ASSERT_TRUE(rogue.is_ok());
  const std::uint64_t nonce = challenger.issue_challenge();
  auto report = deployment.device->remote_attest().attest_task(*rogue, nonce);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(challenger.verify(*report, "ecu-fw").code,
            VerifyOutcome::Code::kUnknownRelease);
}

TEST(Challenger, ChallengesExpire) {
  Deployment deployment;
  deployment.bring_up(2, 2);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db, /*nonce_seed=*/7, /*validity_window=*/3);
  const std::uint64_t old_nonce = challenger.issue_challenge();
  const auto report = deployment.attest(old_nonce);
  for (int i = 0; i < 5; ++i) {
    challenger.issue_challenge();  // time passes (issue counter advances)
  }
  EXPECT_EQ(challenger.verify(report, "ecu-fw").code, VerifyOutcome::Code::kExpired);
}

TEST(Challenger, NoncesNeverRepeatSoon) {
  GoldenDatabase db;
  Challenger challenger(crypto::Key128{}, db);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(challenger.issue_challenge()).second) << "repeat at " << i;
  }
}

TEST(EndToEnd, UpdateThenReattestBecomesCurrent) {
  Deployment deployment;
  deployment.bring_up(/*deployed=*/1, /*released=*/2);
  Challenger challenger(*deployment.manufacturer.attestation_key(deployment.device_id),
                        deployment.db);
  // v1 reports stale.
  std::uint64_t nonce = challenger.issue_challenge();
  EXPECT_EQ(challenger.verify(deployment.attest(nonce), "ecu-fw").code,
            VerifyOutcome::Code::kStale);
  // Runtime update to v2...
  auto updated = deployment.device->update_task(deployment.task, firmware(2),
                                                {.name = "fw2"});
  ASSERT_TRUE(updated.is_ok()) << updated.status().to_string();
  deployment.task = *updated;
  // ...and the next attestation verifies as current.
  nonce = challenger.issue_challenge();
  const auto outcome = challenger.verify(deployment.attest(nonce), "ecu-fw");
  EXPECT_TRUE(outcome.ok()) << verify_outcome_name(outcome.code);
}

}  // namespace
}  // namespace tytan
