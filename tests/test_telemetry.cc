// Fleet telemetry pipeline: health snapshots, anomaly rules, flight-recorder
// dumps, JSONL round-trip — and the determinism contract: telemetry output is
// byte-identical whatever the fleet's worker-thread count.
#include <gtest/gtest.h>

#include "fleet/verifier_workload.h"
#include "obs/telemetry.h"

namespace tytan::obs {
namespace {

HealthSnapshot snap(std::uint32_t device, std::uint64_t seq, std::uint64_t cycle) {
  HealthSnapshot s;
  s.device = device;
  s.seq = seq;
  s.cycle = cycle;
  s.instructions = cycle / 4;
  return s;
}

// ----------------------------------------------------------------- the rules

TEST(AnomalyRules, AttestationFailureTripsOnDelta) {
  AttestationFailureRule rule;
  HealthSnapshot a = snap(1, 1, 1000);
  EXPECT_FALSE(rule.check(a, nullptr, {}).has_value());
  a.attest_failed = 1;
  // First snapshot with a failure trips even without a predecessor.
  EXPECT_TRUE(rule.check(a, nullptr, {}).has_value());
  HealthSnapshot b = snap(1, 2, 2000);
  b.attest_failed = 1;
  // No new failures since prev => quiet.
  EXPECT_FALSE(rule.check(b, &a, {}).has_value());
  b.attest_failed = 2;
  EXPECT_TRUE(rule.check(b, &a, {}).has_value());
}

TEST(AnomalyRules, FaultSpikeComparesAgainstPeerBaseline) {
  FaultSpikeRule rule(/*min_delta=*/1, /*factor=*/4.0);
  FleetBaseline baseline;
  baseline.devices = 8;
  baseline.mean_fault_delta = 0.5;
  HealthSnapshot a = snap(2, 1, 1000);
  a.faults = 10;
  // First snapshot: faults since boot, against near-quiet peers — trips.
  EXPECT_TRUE(rule.check(a, nullptr, baseline).has_value());
  HealthSnapshot b = snap(2, 2, 2000);
  b.faults = 11;  // delta 1, peer mean (4-1)/7 — within 4x
  EXPECT_FALSE(rule.check(b, &a, baseline).has_value());
  b.faults = 14;  // delta 4 while the peers were quiet
  EXPECT_TRUE(rule.check(b, &a, baseline).has_value());
  // A fleet-wide fault wave is not a per-device anomaly: with every device
  // averaging 4 faults this round, peer mean stays 4 and delta 4 <= 16.
  baseline.mean_fault_delta = 4.0;
  EXPECT_FALSE(rule.check(b, &a, baseline).has_value());
}

TEST(AnomalyRules, StalledDeviceLatchesOnceAndRearms) {
  StalledDeviceRule rule(/*snapshots=*/2);
  HealthSnapshot prev = snap(3, 1, 5000);
  HealthSnapshot cur = snap(3, 2, 5000);  // no progress #1
  EXPECT_FALSE(rule.check(cur, &prev, {}).has_value());
  HealthSnapshot cur2 = snap(3, 3, 5000);  // no progress #2 => fire
  EXPECT_TRUE(rule.check(cur2, &cur, {}).has_value());
  HealthSnapshot cur3 = snap(3, 4, 5000);  // still stalled — latched, quiet
  EXPECT_FALSE(rule.check(cur3, &cur2, {}).has_value());
  HealthSnapshot moved = snap(3, 5, 6000);  // progress re-arms the watchdog
  EXPECT_FALSE(rule.check(moved, &cur3, {}).has_value());
  HealthSnapshot stall1 = snap(3, 6, 6000);
  HealthSnapshot stall2 = snap(3, 7, 6000);
  EXPECT_FALSE(rule.check(stall1, &moved, {}).has_value());
  EXPECT_TRUE(rule.check(stall2, &stall1, {}).has_value());
}

TEST(AnomalyRules, EventDropThreshold) {
  EventDropRule rule(/*min_delta=*/2);
  HealthSnapshot a = snap(4, 1, 1000);
  a.events_dropped = 1;
  EXPECT_FALSE(rule.check(a, nullptr, {}).has_value());  // delta 1 < 2
  HealthSnapshot b = snap(4, 2, 2000);
  b.events_dropped = 3;
  EXPECT_TRUE(rule.check(b, &a, {}).has_value());  // delta 2
}

// ------------------------------------------------------------- TelemetryHub

TEST(TelemetryHub, RecordsHistoryAndLatest) {
  TelemetryHub hub;
  hub.record(snap(1, 1, 1000), nullptr);
  hub.record(snap(2, 1, 1100), nullptr);
  hub.record(snap(1, 2, 2000), nullptr);
  EXPECT_EQ(hub.snapshots().size(), 3u);
  const auto latest = hub.latest();
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest.at(1).cycle, 2000u);
  EXPECT_EQ(latest.at(2).cycle, 1100u);
  EXPECT_TRUE(hub.anomalies().empty());  // no rules installed
}

TEST(TelemetryHub, FlightRecorderCapturesLastNEvents) {
  std::uint64_t clock = 0;
  EventBus bus(/*capacity=*/256);
  bus.set_clock(&clock);
  bus.enable();
  for (std::uint32_t i = 0; i < 10; ++i) {
    clock = 100 + i;
    bus.emit(EventKind::kSchedTick, /*task=*/-1, /*a=*/i);
  }

  TelemetryHub hub(/*flight_events=*/4);
  hub.add_rule(std::make_unique<AttestationFailureRule>());
  HealthSnapshot bad = snap(7, 1, 110);
  bad.attest_failed = 1;
  hub.record(bad, &bus);

  const auto anomalies = hub.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].device, 7u);
  EXPECT_EQ(anomalies[0].rule, "attestation-failure");
  ASSERT_EQ(anomalies[0].flight.size(), 4u);  // last 4 of the 10 emitted
  EXPECT_EQ(anomalies[0].flight.front().a, 6u);
  EXPECT_EQ(anomalies[0].flight.back().a, 9u);
  EXPECT_EQ(anomalies[0].flight.back().cycle, 109u);
}

TEST(TelemetryHub, RoundBaselineSuppressesFleetWideFaults) {
  TelemetryHub hub;
  hub.add_rule(std::make_unique<FaultSpikeRule>(1, 4.0));
  auto round_of = [](std::uint64_t seq, std::uint64_t faults_everywhere,
                     std::uint64_t spike_on_0) {
    std::vector<HealthSnapshot> round;
    for (std::uint32_t d = 0; d < 4; ++d) {
      HealthSnapshot s = snap(d, seq, 1000 * seq);
      s.faults = faults_everywhere * seq + (d == 0 ? spike_on_0 : 0);
      round.push_back(s);
    }
    return round;
  };
  hub.record_round(round_of(1, 2, 0), nullptr);  // uniform faults
  hub.record_round(round_of(2, 2, 0), nullptr);  // still uniform => quiet
  EXPECT_TRUE(hub.anomalies().empty());
  hub.record_round(round_of(3, 2, 50), nullptr);  // device 0 spikes
  const auto anomalies = hub.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].device, 0u);
  EXPECT_EQ(anomalies[0].rule, "fault-spike");
}

// ------------------------------------------------------------ JSONL contract

TEST(TelemetryJsonl, RoundTripsSnapshotsAndAnomalies) {
  std::uint64_t clock = 42;
  EventBus bus(16);
  bus.set_clock(&clock);
  bus.enable();
  bus.emit(EventKind::kFault, /*task=*/3, /*a=*/7, /*b=*/9);

  TelemetryHub hub(/*flight_events=*/8);
  hub.install_default_rules();
  HealthSnapshot healthy = snap(1, 1, 5000);
  healthy.syscalls = 12;
  healthy.ipc_delivered = 3;
  healthy.attest_total = 1;
  healthy.attest_verified = 1;
  hub.record(healthy, &bus);
  HealthSnapshot failing = snap(2, 1, 5100);
  failing.attest_total = 1;
  failing.attest_failed = 1;
  failing.halted = true;
  hub.record(failing, &bus);

  const std::string jsonl = hub.to_jsonl();
  auto log = parse_telemetry_jsonl(jsonl);
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  ASSERT_EQ(log->snapshots.size(), 2u);
  EXPECT_EQ(log->snapshots[0].device, 1u);
  EXPECT_EQ(log->snapshots[0].cycle, 5000u);
  EXPECT_EQ(log->snapshots[0].syscalls, 12u);
  EXPECT_EQ(log->snapshots[0].ipc_delivered, 3u);
  EXPECT_EQ(log->snapshots[0].attest_verified, 1u);
  EXPECT_FALSE(log->snapshots[0].halted);
  EXPECT_EQ(log->snapshots[1].device, 2u);
  EXPECT_EQ(log->snapshots[1].attest_failed, 1u);
  EXPECT_TRUE(log->snapshots[1].halted);
  ASSERT_EQ(log->anomalies.size(), 1u);
  EXPECT_EQ(log->anomalies[0].device, 2u);
  EXPECT_EQ(log->anomalies[0].rule, "attestation-failure");
  EXPECT_EQ(log->anomalies[0].flight_count, 1u);
  EXPECT_FALSE(log->anomalies[0].message.empty());
}

TEST(TelemetryJsonl, RejectsUnknownRecordType) {
  EXPECT_FALSE(parse_telemetry_jsonl(R"({"type":"mystery","device":1})" "\n").is_ok());
}

// ------------------------------------------------- fleet integration + rules

fleet::WorkloadConfig telemetry_workload(std::size_t devices, std::size_t threads) {
  fleet::WorkloadConfig config;
  config.fleet.device_count = devices;
  config.fleet.threads = threads;
  config.fleet.telemetry.enabled = true;
  config.cycles = 400'000;
  return config;
}

TEST(FleetTelemetry, HealthyFleetSnapshotsWithoutAnomalies) {
  fleet::Fleet fleet(telemetry_workload(4, 2).fleet);
  const auto result = fleet::run_verifier_workload(fleet, telemetry_workload(4, 2));
  ASSERT_TRUE(result.all_verified()) << result.status.to_string();
  // 4 run-rounds (quantum 100k over 400k cycles) + 1 post-attest sweep.
  EXPECT_EQ(fleet.telemetry().snapshots().size(), 4u * 5u);
  EXPECT_TRUE(fleet.telemetry().anomalies().empty());
  const auto latest = fleet.telemetry().latest();
  ASSERT_EQ(latest.size(), 4u);
  for (const auto& [device, s] : latest) {
    EXPECT_GE(s.cycle, 400'000u);
    EXPECT_EQ(s.attest_total, 1u);
    EXPECT_EQ(s.attest_verified, 1u);
    EXPECT_EQ(s.faults, 0u);
  }
}

// The tentpole determinism contract: telemetry JSONL is byte-identical for
// --threads=1 vs --threads=8.
TEST(FleetTelemetry, JsonlByteIdenticalAcrossThreadCounts) {
  fleet::Fleet serial(telemetry_workload(6, 1).fleet);
  fleet::Fleet threaded(telemetry_workload(6, 8).fleet);
  ASSERT_TRUE(
      fleet::run_verifier_workload(serial, telemetry_workload(6, 1)).all_verified());
  ASSERT_TRUE(
      fleet::run_verifier_workload(threaded, telemetry_workload(6, 8)).all_verified());
  const std::string a = serial.telemetry().to_jsonl();
  const std::string b = threaded.telemetry().to_jsonl();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FleetTelemetry, RogueDeviceTripsAttestationFailure) {
  fleet::WorkloadConfig config = telemetry_workload(4, 2);
  config.rogue_device = 2;
  fleet::Fleet fleet(config.fleet);
  const auto result = fleet::run_verifier_workload(fleet, config);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.verified, 3u);  // everyone but the rogue
  EXPECT_EQ(fleet.device(2).outcome().code,
            verifier::VerifyOutcome::Code::kUnknownRelease);
  EXPECT_EQ(fleet.device(2).attest_failed(), 1u);

  bool found = false;
  for (const Anomaly& anomaly : fleet.telemetry().anomalies()) {
    if (anomaly.rule == "attestation-failure") {
      EXPECT_EQ(anomaly.device, fleet.device(2).id());
      EXPECT_FALSE(anomaly.flight.empty());  // obs on => flight recorder filled
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FleetTelemetry, FaultingDeviceTripsFaultSpike) {
  fleet::WorkloadConfig config = telemetry_workload(6, 2);
  config.fault_device = 1;
  fleet::Fleet fleet(config.fleet);
  const auto result = fleet::run_verifier_workload(fleet, config);
  ASSERT_TRUE(result.all_verified()) << result.status.to_string();

  bool found = false;
  for (const Anomaly& anomaly : fleet.telemetry().anomalies()) {
    if (anomaly.rule == "fault-spike") {
      EXPECT_EQ(anomaly.device, fleet.device(1).id());
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(fleet.telemetry().latest().at(fleet.device(1).id()).fault_kills, 1u);
}

}  // namespace
}  // namespace tytan::obs
