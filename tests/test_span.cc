// Attestation span layer: recorder semantics (nesting, trace propagation,
// fault annotation, dormant zero-cost), JSONL round-trip, and the fleet
// determinism contract — span files byte-identical whatever the fleet's
// worker-thread count, and simulated cycles identical with spans on or off.
#include <gtest/gtest.h>

#include <string>

#include "fault/fault.h"
#include "fleet/fleet.h"
#include "fleet/verifier_workload.h"
#include "obs/span.h"

namespace tytan::obs {
namespace {

// ------------------------------------------------------------- the recorder

TEST(SpanRecorder, DisabledRecorderIsInert) {
  SpanRecorder rec;
  EXPECT_FALSE(rec.enabled());
  const SpanRecorder::SpanId id = rec.begin(SpanPhase::kNonceGen);
  EXPECT_EQ(id, 0u);
  rec.end(id, SpanOutcome::kOk);  // no-op on the null id
  Event fault{};
  fault.kind = EventKind::kFaultInject;
  rec.annotate(fault);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.current(), 0u);
  EXPECT_TRUE(rec.to_jsonl().empty());
}

TEST(SpanRecorder, ChildInheritsTraceAndParent) {
  std::uint64_t clock = 100;
  SpanRecorder rec;
  rec.set_clock(&clock);
  rec.enable();
  const auto root = rec.begin_trace(42, SpanPhase::kAttestRound, /*task=*/3);
  clock = 150;
  const auto child = rec.begin(SpanPhase::kNonceGen, 3);
  EXPECT_EQ(rec.current(), child);
  clock = 180;
  rec.end(child, SpanOutcome::kOk);
  EXPECT_EQ(rec.current(), root);
  clock = 200;
  rec.end(root, SpanOutcome::kOk);
  EXPECT_EQ(rec.current(), 0u);

  ASSERT_EQ(rec.size(), 2u);
  const Span& r = rec.spans()[root - 1];
  const Span& c = rec.spans()[child - 1];
  EXPECT_EQ(r.trace_id, 42u);
  EXPECT_EQ(r.parent_id, 0u);
  EXPECT_EQ(r.begin_cycle, 100u);
  EXPECT_EQ(r.end_cycle, 200u);
  EXPECT_EQ(c.trace_id, 42u);
  EXPECT_EQ(c.parent_id, root);
  EXPECT_EQ(c.begin_cycle, 150u);
  EXPECT_EQ(c.end_cycle, 180u);
  EXPECT_EQ(c.outcome, SpanOutcome::kOk);
}

TEST(SpanRecorder, BeginWithoutOpenSpanIsParentlessTraceZero) {
  SpanRecorder rec;
  rec.enable();
  const auto id = rec.begin(SpanPhase::kRtmMeasure, 2);
  rec.end(id, SpanOutcome::kOk);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].trace_id, 0u);
  EXPECT_EQ(rec.spans()[0].parent_id, 0u);
}

TEST(SpanRecorder, AnnotateAttachesToInnermostOpenSpan) {
  std::uint64_t clock = 10;
  SpanRecorder rec;
  rec.set_clock(&clock);
  rec.enable();
  const auto root = rec.begin_trace(7, SpanPhase::kAttestRound);
  const auto child = rec.begin(SpanPhase::kHmacCompute);
  Event inject{};
  inject.kind = EventKind::kFaultInject;
  inject.cycle = 20;  // notes carry the emitting event's own cycle stamp
  inject.a = 2;
  inject.b = 5;
  rec.annotate(inject);
  rec.end(child, SpanOutcome::kFailed);
  Event recover{};
  recover.kind = EventKind::kFaultRecover;
  rec.annotate(recover);  // child closed -> lands on the root
  rec.end(root, SpanOutcome::kRetried);

  ASSERT_EQ(rec.spans()[child - 1].notes.size(), 1u);
  const SpanNote& note = rec.spans()[child - 1].notes[0];
  EXPECT_EQ(note.kind, EventKind::kFaultInject);
  EXPECT_EQ(note.cycle, 20u);
  EXPECT_EQ(note.a, 2u);
  EXPECT_EQ(note.b, 5u);
  ASSERT_EQ(rec.spans()[root - 1].notes.size(), 1u);
  EXPECT_EQ(rec.spans()[root - 1].notes[0].kind, EventKind::kFaultRecover);
}

TEST(SpanRecorder, OnEndFiresForEveryCompletedSpan) {
  SpanRecorder rec;
  rec.enable();
  std::size_t completed = 0;
  rec.set_on_end([&](const Span& span) {
    ++completed;
    EXPECT_NE(span.outcome, SpanOutcome::kOpen);
  });
  const auto a = rec.begin(SpanPhase::kVerify);
  const auto b = rec.begin(SpanPhase::kNonceGen);
  rec.end(b, SpanOutcome::kOk);
  rec.end(a, SpanOutcome::kFailed);
  rec.end(a, SpanOutcome::kOk);  // double-end ignored
  EXPECT_EQ(completed, 2u);
}

TEST(SpanPhases, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
    const auto phase = static_cast<SpanPhase>(i);
    const std::string_view name = span_phase_name(phase);
    EXPECT_FALSE(name.empty());
    ASSERT_TRUE(span_phase_from_name(name).has_value()) << name;
    EXPECT_EQ(*span_phase_from_name(name), phase);
  }
  EXPECT_FALSE(span_phase_from_name("no-such-phase").has_value());
}

// ---------------------------------------------------------- JSONL round-trip

TEST(SpanJsonl, RoundTripsThroughParser) {
  std::uint64_t clock = 1000;
  SpanRecorder rec;
  rec.set_clock(&clock);
  rec.set_device(9);
  rec.enable();
  const auto root = rec.begin_trace(0x900001, SpanPhase::kAttestRound, 4);
  const auto child = rec.begin(SpanPhase::kHmacCompute, 4);
  Event inject{};
  inject.kind = EventKind::kFaultInject;
  inject.a = 2;
  rec.annotate(inject);
  clock = 1500;
  rec.end(child, SpanOutcome::kOk);
  rec.end(root, SpanOutcome::kOk);

  const std::string jsonl = rec.to_jsonl();
  auto log = parse_spans_jsonl(jsonl);
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  ASSERT_EQ(log->spans.size(), 2u);
  const ParsedSpan& r = log->spans[0];
  EXPECT_EQ(r.device, 9u);
  EXPECT_EQ(r.trace, 0x900001u);
  EXPECT_EQ(r.span, root);
  EXPECT_EQ(r.parent, 0u);
  EXPECT_EQ(r.phase, "attest-round");
  EXPECT_EQ(r.task, 4);
  EXPECT_EQ(r.begin, 1000u);
  EXPECT_EQ(r.end, 1500u);
  EXPECT_EQ(r.cycles, 500u);
  EXPECT_EQ(r.outcome, "ok");
  const ParsedSpan& c = log->spans[1];
  EXPECT_EQ(c.parent, root);
  EXPECT_EQ(c.phase, "hmac-compute");
  ASSERT_EQ(c.note_kinds.size(), 1u);
  EXPECT_EQ(c.note_kinds[0], "fault-inject");
}

TEST(SpanJsonl, EmptyInputParsesToEmptyLog) {
  auto log = parse_spans_jsonl("");
  ASSERT_TRUE(log.is_ok());
  EXPECT_TRUE(log->spans.empty());
}

TEST(SpanJsonl, TruncatedLineIsCorrupt) {
  EXPECT_FALSE(parse_spans_jsonl(R"({"type":"span","device":1)").is_ok());
  EXPECT_FALSE(parse_spans_jsonl("not json at all\n").is_ok());
  EXPECT_FALSE(parse_spans_jsonl(R"({"type":"snapshot","device":1})").is_ok());
}

// -------------------------------------------------------- fleet integration

fleet::WorkloadConfig span_workload(std::size_t devices, std::size_t threads) {
  fleet::WorkloadConfig config;
  config.fleet.device_count = devices;
  config.fleet.threads = threads;
  config.fleet.spans = true;
  config.cycles = 400'000;
  config.attest_sweeps = 2;
  return config;
}

TEST(FleetSpans, EveryRoundDecomposesIntoTypedPhases) {
  fleet::Fleet fleet(span_workload(4, 2).fleet);
  const auto result = fleet::run_verifier_workload(fleet, span_workload(4, 2));
  ASSERT_TRUE(result.all_verified()) << result.status.to_string();

  auto log = parse_spans_jsonl(fleet.spans_jsonl());
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  ASSERT_FALSE(log->spans.empty());
  // Each device attests twice -> two attest-round traces per device, each
  // containing the full challenger<->prover phase chain.
  std::size_t rounds = 0;
  for (const ParsedSpan& span : log->spans) {
    if (span.phase != "attest-round") {
      continue;
    }
    ++rounds;
    EXPECT_EQ(span.outcome, "ok");
    bool saw[kNumSpanPhases] = {};
    for (const ParsedSpan& child : log->spans) {
      if (child.trace == span.trace && child.parent == span.span) {
        const auto phase = span_phase_from_name(child.phase);
        ASSERT_TRUE(phase.has_value());
        saw[static_cast<std::size_t>(*phase)] = true;
      }
    }
    EXPECT_TRUE(saw[static_cast<std::size_t>(SpanPhase::kNonceGen)]);
    EXPECT_TRUE(saw[static_cast<std::size_t>(SpanPhase::kChallengeDeliver)]);
    EXPECT_TRUE(saw[static_cast<std::size_t>(SpanPhase::kHmacCompute)]);
    EXPECT_TRUE(saw[static_cast<std::size_t>(SpanPhase::kReportReturn)]);
    EXPECT_TRUE(saw[static_cast<std::size_t>(SpanPhase::kVerify)]);
  }
  EXPECT_EQ(rounds, 4u * 2u);
}

TEST(FleetSpans, TraceIdEncodesDeviceAndRound) {
  EXPECT_EQ(fleet::Fleet::trace_id(1, 1), (1ull << 20) | 1);
  EXPECT_EQ(fleet::Fleet::trace_id(16, 2), (16ull << 20) | 2);
}

// The tentpole determinism contract: span JSONL is byte-identical for
// --threads=1 vs --threads=8 (host wall-time never serializes).
TEST(FleetSpans, JsonlByteIdenticalAcrossThreadCounts) {
  fleet::Fleet serial(span_workload(6, 1).fleet);
  fleet::Fleet threaded(span_workload(6, 8).fleet);
  ASSERT_TRUE(
      fleet::run_verifier_workload(serial, span_workload(6, 1)).all_verified());
  ASSERT_TRUE(
      fleet::run_verifier_workload(threaded, span_workload(6, 8)).all_verified());
  const std::string a = serial.spans_jsonl();
  const std::string b = threaded.spans_jsonl();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// The zero-simulated-cost contract: enabling spans never changes a cycle.
TEST(FleetSpans, SimulatedCyclesIdenticalWithSpansOnOrOff) {
  fleet::WorkloadConfig off = span_workload(4, 2);
  off.fleet.spans = false;
  fleet::Fleet fleet_off(off.fleet);
  fleet::Fleet fleet_on(span_workload(4, 2).fleet);
  const auto r_off = fleet::run_verifier_workload(fleet_off, off);
  const auto r_on = fleet::run_verifier_workload(fleet_on, span_workload(4, 2));
  ASSERT_TRUE(r_off.all_verified());
  ASSERT_TRUE(r_on.all_verified());
  EXPECT_EQ(r_off.totals.cycles, r_on.totals.cycles);
  EXPECT_EQ(r_off.totals.instructions, r_on.totals.instructions);
  EXPECT_TRUE(fleet_off.spans_jsonl().empty());
  EXPECT_FALSE(fleet_on.spans_jsonl().empty());
}

TEST(FleetSpans, FaultedRoundIsAnnotatedAndRetried) {
  fleet::WorkloadConfig config = span_workload(4, 2);
  auto plan = fault::FaultPlan::parse("nonce-replay@attest#2");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  config.fleet.fault_plan = plan.take();
  config.fleet.fault_plan_device = 1;
  config.fleet.attest_retries = 2;
  fleet::Fleet fleet(config.fleet);
  const auto result = fleet::run_verifier_workload(fleet, config);
  ASSERT_TRUE(result.all_verified()) << result.status.to_string();

  auto log = parse_spans_jsonl(fleet.spans_jsonl());
  ASSERT_TRUE(log.is_ok());
  // The faulted device's second round: replayed nonce -> verify fails ->
  // backoff -> retry verifies.  The round span carries the whole story.
  bool saw_retried = false;
  bool saw_backoff = false;
  for (const ParsedSpan& span : log->spans) {
    if (span.phase == "attest-round" && span.outcome == "retried") {
      saw_retried = true;
      EXPECT_EQ(span.device, 2u);  // fleet device ids are 1-based
      bool inject = false;
      bool recover = false;
      for (const std::string& kind : span.note_kinds) {
        inject |= kind == "fault-inject";
        recover |= kind == "fault-recover";
      }
      EXPECT_TRUE(inject);
      EXPECT_TRUE(recover);
    }
    if (span.phase == "retry-backoff") {
      saw_backoff = true;
      EXPECT_GT(span.cycles, 0u);
    }
  }
  EXPECT_TRUE(saw_retried);
  EXPECT_TRUE(saw_backoff);
}

TEST(FleetSpans, SnapshotCarriesSpanCountAndRoundP99) {
  fleet::WorkloadConfig config = span_workload(4, 2);
  config.fleet.telemetry.enabled = true;
  fleet::Fleet fleet(config.fleet);
  ASSERT_TRUE(fleet::run_verifier_workload(fleet, config).all_verified());
  const auto latest = fleet.telemetry().latest();
  ASSERT_EQ(latest.size(), 4u);
  for (const auto& [device, s] : latest) {
    EXPECT_GT(s.spans_recorded, 0u);
    EXPECT_GT(s.attest_round_p99, 0u);
  }
}

}  // namespace
}  // namespace tytan::obs
