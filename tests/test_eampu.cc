// Unit tests of the EA-MPU hardware semantics (policy evaluation in
// isolation, without a booted platform).
#include <gtest/gtest.h>

#include "hw/eampu.h"

namespace tytan::hw {
namespace {

using sim::Access;

constexpr std::uint32_t kTaskA = 0x40000;
constexpr std::uint32_t kTaskB = 0x50000;
constexpr std::uint32_t kSize = 0x1000;
constexpr std::uint32_t kOutside = 0x60000;

class EaMpuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mpu_.add_exec_region({kTaskA, kSize, kTaskA}).is_ok());
    ASSERT_TRUE(mpu_.add_exec_region({kTaskB, kSize, kTaskB}).is_ok());
    ASSERT_TRUE(mpu_
                    .write_slot(0, {.code_start = kTaskA,
                                    .code_size = kSize,
                                    .data_start = kTaskA,
                                    .data_size = kSize,
                                    .perms = kPermRead | kPermWrite})
                    .is_ok());
    ASSERT_TRUE(mpu_
                    .write_slot(1, {.code_start = kTaskB,
                                    .code_size = kSize,
                                    .data_start = kTaskB,
                                    .data_size = kSize,
                                    .perms = kPermRead | kPermWrite})
                    .is_ok());
  }

  EaMpu mpu_;
};

TEST_F(EaMpuTest, TaskAccessesOwnMemory) {
  EXPECT_TRUE(mpu_.allows(kTaskA + 4, kTaskA + 0x800, Access::kRead));
  EXPECT_TRUE(mpu_.allows(kTaskA + 4, kTaskA + 0x800, Access::kWrite));
  EXPECT_TRUE(mpu_.allows(kTaskA + 4, kTaskA + 4, Access::kExecute));
}

TEST_F(EaMpuTest, TaskCannotTouchOtherTask) {
  EXPECT_FALSE(mpu_.allows(kTaskA + 4, kTaskB + 0x800, Access::kRead));
  EXPECT_FALSE(mpu_.allows(kTaskA + 4, kTaskB + 0x800, Access::kWrite));
}

TEST_F(EaMpuTest, UnprotectedMemoryIsOpen) {
  EXPECT_TRUE(mpu_.allows(kTaskA + 4, kOutside, Access::kRead));
  EXPECT_TRUE(mpu_.allows(kOutside, kOutside, Access::kExecute));
}

TEST_F(EaMpuTest, EntryPointEnforced) {
  // Into A's entry: allowed; into A's middle: denied; within A: free.
  EXPECT_TRUE(mpu_.allows_transfer(kOutside, kTaskA));
  EXPECT_FALSE(mpu_.allows_transfer(kOutside, kTaskA + 8));
  EXPECT_TRUE(mpu_.allows_transfer(kTaskA + 4, kTaskA + 8));
  EXPECT_FALSE(mpu_.allows_transfer(kTaskB + 4, kTaskA + 8));
  EXPECT_TRUE(mpu_.allows_transfer(kTaskB + 4, kTaskA));
}

TEST_F(EaMpuTest, EntryAnywhereDisablesEnforcement) {
  ASSERT_TRUE(
      mpu_.add_exec_region({kOutside, kSize, ExecRegion::kEntryAnywhere}).is_ok());
  EXPECT_TRUE(mpu_.allows_transfer(kTaskA, kOutside + 0x123));
}

TEST_F(EaMpuTest, EntryNoneBlocksAllSoftwareEntry) {
  ASSERT_TRUE(mpu_.add_exec_region({0x70000, kSize, ExecRegion::kEntryNone}).is_ok());
  EXPECT_FALSE(mpu_.allows_transfer(kTaskA, 0x70000));
  EXPECT_FALSE(mpu_.allows_transfer(kTaskA, 0x70000 + 8));
  EXPECT_TRUE(mpu_.allows_transfer(0x70004, 0x70008));  // intra-region ok
}

TEST_F(EaMpuTest, CrossTaskRuleGrantsScopedAccess) {
  // Grant B read access to A's first 16 bytes (shared-memory-style rule).
  ASSERT_TRUE(mpu_
                  .write_slot(2, {.code_start = kTaskB,
                                  .code_size = kSize,
                                  .data_start = kTaskA,
                                  .data_size = 16,
                                  .perms = kPermRead})
                  .is_ok());
  EXPECT_TRUE(mpu_.allows(kTaskB + 4, kTaskA + 8, Access::kRead));
  EXPECT_FALSE(mpu_.allows(kTaskB + 4, kTaskA + 8, Access::kWrite));
  EXPECT_FALSE(mpu_.allows(kTaskB + 4, kTaskA + 16, Access::kRead));
}

TEST_F(EaMpuTest, OsAccessibleBitAdmitsOnlyOsWindow) {
  ASSERT_TRUE(mpu_
                  .write_slot(2, {.code_start = kOutside,
                                  .code_size = kSize,
                                  .data_start = kOutside,
                                  .data_size = kSize,
                                  .perms = kPermRead | kPermWrite,
                                  .os_accessible = true})
                  .is_ok());
  EXPECT_TRUE(mpu_.allows(sim::kFwOsKernel + 4, kOutside + 8, Access::kWrite));
  EXPECT_FALSE(mpu_.allows(kTaskA + 4, kOutside + 8, Access::kWrite));
}

TEST_F(EaMpuTest, BackgroundRuleGrantsWithoutProtecting) {
  ASSERT_TRUE(mpu_
                  .write_slot(2, {.code_start = sim::kFwRtm,
                                  .code_size = sim::kFwWindowSize,
                                  .data_start = 0x60000,
                                  .data_size = 0x10000,
                                  .perms = kPermRead | kPermWrite,
                                  .os_accessible = false,
                                  .background = true})
                  .is_ok());
  // The RTM gets access...
  EXPECT_TRUE(mpu_.allows(sim::kFwRtm + 4, 0x60008, Access::kWrite));
  // ...but the region stays open for everyone else (not "protected").
  EXPECT_TRUE(mpu_.allows(kTaskA + 4, 0x60008, Access::kWrite));
}

TEST_F(EaMpuTest, BackgroundRuleReachesProtectedRegions) {
  ASSERT_TRUE(mpu_
                  .write_slot(2, {.code_start = sim::kFwRtm,
                                  .code_size = sim::kFwWindowSize,
                                  .data_start = kTaskA,
                                  .data_size = kSize,
                                  .perms = kPermRead,
                                  .os_accessible = false,
                                  .background = true})
                  .is_ok());
  EXPECT_TRUE(mpu_.allows(sim::kFwRtm + 4, kTaskA + 8, Access::kRead));
  EXPECT_FALSE(mpu_.allows(sim::kFwRtm + 4, kTaskA + 8, Access::kWrite));
}

TEST_F(EaMpuTest, ProtectedDataNeverExecutable) {
  // kTaskA's data is also its code (flat task region) — but a pure data rule
  // over fresh memory forbids execution there.
  ASSERT_TRUE(mpu_
                  .write_slot(2, {.code_start = kTaskA,
                                  .code_size = kSize,
                                  .data_start = 0x80000,
                                  .data_size = 0x100,
                                  .perms = kPermRead | kPermWrite})
                  .is_ok());
  EXPECT_FALSE(mpu_.allows(0x80010, 0x80010, Access::kExecute));
  EXPECT_FALSE(mpu_.allows_transfer(kTaskA + 4, 0x80010));
}

TEST(EaMpuSlots, CapacityAndReuse) {
  EaMpu mpu;
  const Rule rule{.code_start = 0x1000, .code_size = 16, .data_start = 0x2000,
                  .data_size = 16, .perms = kPermRead};
  for (std::size_t i = 0; i < EaMpu::kNumSlots; ++i) {
    EXPECT_TRUE(mpu.write_slot(i, rule).is_ok());
  }
  EXPECT_EQ(mpu.slots_in_use(), EaMpu::kNumSlots);
  EXPECT_FALSE(mpu.write_slot(EaMpu::kNumSlots, rule).is_ok());
  EXPECT_TRUE(mpu.clear_slot(7).is_ok());
  EXPECT_FALSE(mpu.slot_used(7));
  EXPECT_EQ(mpu.slots_in_use(), EaMpu::kNumSlots - 1);
}

TEST(EaMpuSlots, PortGuardBlocksWrites) {
  EaMpu mpu;
  mpu.set_port_guard(true);
  const Rule rule{.code_start = 0, .code_size = 4, .data_start = 0x100, .data_size = 4,
                  .perms = kPermRead};
  EXPECT_EQ(mpu.write_slot(0, rule).code(), Err::kPermissionDenied);
  EXPECT_EQ(mpu.clear_slot(0).code(), Err::kPermissionDenied);
  {
    EaMpu::PortUnlock unlock(mpu);
    EXPECT_TRUE(mpu.write_slot(0, rule).is_ok());
  }
  EXPECT_TRUE(mpu.port_locked());
}

TEST(EaMpuSlots, ExecRegionsRejectOverlap) {
  EaMpu mpu;
  ASSERT_TRUE(mpu.add_exec_region({0x1000, 0x100, 0x1000}).is_ok());
  EXPECT_FALSE(mpu.add_exec_region({0x1080, 0x100, 0x1080}).is_ok());
  EXPECT_TRUE(mpu.add_exec_region({0x1100, 0x100, 0x1100}).is_ok());
}

TEST(EaMpuSlots, EmptyRuleRejected) {
  EaMpu mpu;
  EXPECT_FALSE(mpu.write_slot(0, Rule{}).is_ok());
}

}  // namespace
}  // namespace tytan::hw
