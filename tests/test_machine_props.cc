// Property-style sweeps of the CPU semantics: the interpreter must agree
// with host-side reference arithmetic across operand ranges, and structural
// invariants (stack balance, flag coherence) must hold for generated
// programs.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/devices.h"
#include "sim/machine.h"

namespace tytan::sim {
namespace {

constexpr std::uint32_t kCodeBase = 0x40000;
constexpr std::uint32_t kStackTop = 0x48000;

/// Runs `source` on a bare machine; returns the final CPU state.
CpuState run(std::string_view source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kCodeBase + object->entry;
  machine.cpu().set_sp(kStackTop);
  machine.run(1'000'000);
  EXPECT_EQ(machine.halt_reason(), HaltReason::kHltInstruction);
  return machine.cpu();
}

// ---------------------------------------------------------------------------
// Arithmetic vs host reference, parameterized over interesting operand pairs.
// ---------------------------------------------------------------------------

struct OperandPair {
  std::int64_t a;
  std::int64_t b;
};

class AluSweep : public ::testing::TestWithParam<OperandPair> {};

TEST_P(AluSweep, AddSubMulMatchHost) {
  const auto [a, b] = GetParam();
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  std::string source;
  source += "    li r1, " + std::to_string(ua) + "\n";
  source += "    li r2, " + std::to_string(ub) + "\n";
  source += "    mov r3, r1\n    add r3, r2\n";   // r3 = a + b
  source += "    mov r4, r1\n    sub r4, r2\n";   // r4 = a - b
  source += "    mov r5, r1\n    mul r5, r2\n";   // r5 = a * b
  source += "    hlt\n";
  const CpuState cpu = run(source);
  EXPECT_EQ(cpu.regs[3], static_cast<std::uint32_t>(ua + ub));
  EXPECT_EQ(cpu.regs[4], static_cast<std::uint32_t>(ua - ub));
  EXPECT_EQ(cpu.regs[5], static_cast<std::uint32_t>(ua * ub));
}

TEST_P(AluSweep, LogicOpsMatchHost) {
  const auto [a, b] = GetParam();
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  std::string source;
  source += "    li r1, " + std::to_string(ua) + "\n";
  source += "    li r2, " + std::to_string(ub) + "\n";
  source += "    mov r3, r1\n    and r3, r2\n";
  source += "    mov r4, r1\n    or  r4, r2\n";
  source += "    mov r5, r1\n    xor r5, r2\n";
  source += "    hlt\n";
  const CpuState cpu = run(source);
  EXPECT_EQ(cpu.regs[3], ua & ub);
  EXPECT_EQ(cpu.regs[4], ua | ub);
  EXPECT_EQ(cpu.regs[5], ua ^ ub);
}

TEST_P(AluSweep, SignedComparisonMatchesHost) {
  const auto [a, b] = GetParam();
  const auto sa = static_cast<std::int32_t>(static_cast<std::uint32_t>(a));
  const auto sb = static_cast<std::int32_t>(static_cast<std::uint32_t>(b));
  std::string source;
  source += "    li r1, " + std::to_string(static_cast<std::uint32_t>(a)) + "\n";
  source += "    li r2, " + std::to_string(static_cast<std::uint32_t>(b)) + "\n";
  source += R"(
      cmp r1, r2
      jlt less
      movi r5, 0
      hlt
  less:
      movi r5, 1
      hlt
  )";
  EXPECT_EQ(run(source).regs[5], (sa < sb) ? 1u : 0u) << sa << " < " << sb;
}

TEST_P(AluSweep, UnsignedComparisonMatchesHost) {
  const auto [a, b] = GetParam();
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  std::string source;
  source += "    li r1, " + std::to_string(ua) + "\n";
  source += "    li r2, " + std::to_string(ub) + "\n";
  source += R"(
      cmp r1, r2
      jc below
      movi r5, 0
      hlt
  below:
      movi r5, 1
      hlt
  )";
  EXPECT_EQ(run(source).regs[5], (ua < ub) ? 1u : 0u) << ua << " <u " << ub;
}

INSTANTIATE_TEST_SUITE_P(
    EdgeOperands, AluSweep,
    ::testing::Values(OperandPair{0, 0}, OperandPair{1, 1}, OperandPair{-1, 1},
                      OperandPair{1, -1}, OperandPair{-1, -1},
                      OperandPair{0x7FFFFFFF, 1},            // signed overflow
                      OperandPair{-0x80000000ll, -1},        // signed underflow
                      OperandPair{0xFFFFFFFFll, 0xFFFFFFFFll},
                      OperandPair{0x80000000ll, 0x80000000ll},
                      OperandPair{12345, 67890}, OperandPair{-50000, 49999},
                      OperandPair{0xDEADBEEFll, 0x12345678ll}));

// ---------------------------------------------------------------------------
// Shifts across the whole legal range.
// ---------------------------------------------------------------------------

class ShiftSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShiftSweep, ShlShrMatchHost) {
  const unsigned n = GetParam();
  const std::uint32_t value = 0x80C00003u;
  std::string source;
  source += "    li r1, " + std::to_string(value) + "\n";
  source += "    mov r3, r1\n    shli r3, " + std::to_string(n) + "\n";
  source += "    mov r4, r1\n    shri r4, " + std::to_string(n) + "\n";
  source += "    hlt\n";
  const CpuState cpu = run(source);
  EXPECT_EQ(cpu.regs[3], value << n);
  EXPECT_EQ(cpu.regs[4], value >> n);
}

INSTANTIATE_TEST_SUITE_P(AllCounts, ShiftSweep, ::testing::Range(0u, 32u, 5u));

// ---------------------------------------------------------------------------
// Structural invariants.
// ---------------------------------------------------------------------------

TEST(MachineProps, NestedCallsBalanceTheStack) {
  const CpuState cpu = run(R"(
      movi r0, 0
      call f1
      hlt
  f1:
      addi r0, 1
      call f2
      call f2
      ret
  f2:
      addi r0, 16
      call f3
      ret
  f3:
      addi r0, 256
      ret
  )");
  EXPECT_EQ(cpu.regs[0], 1u + 2 * (16 + 256));
  EXPECT_EQ(cpu.sp(), kStackTop);
}

TEST(MachineProps, PushPopIsLifo) {
  const CpuState cpu = run(R"(
      movi r1, 11
      movi r2, 22
      movi r3, 33
      push r1
      push r2
      push r3
      pop  r4
      pop  r5
      pop  r6
      hlt
  )");
  EXPECT_EQ(cpu.regs[4], 33u);
  EXPECT_EQ(cpu.regs[5], 22u);
  EXPECT_EQ(cpu.regs[6], 11u);
  EXPECT_EQ(cpu.sp(), kStackTop);
}

TEST(MachineProps, ByteAndWordAccessesAgree) {
  const CpuState cpu = run(R"(
      li   r1, buffer
      li   r2, 0x04030201
      stw  r2, [r1]
      ldb  r3, [r1]
      ldb  r4, [r1+3]
      hlt
  buffer:
      .word 0
  )");
  EXPECT_EQ(cpu.regs[3], 0x01u);  // little endian
  EXPECT_EQ(cpu.regs[4], 0x04u);
}

TEST(MachineProps, MovhiMoviuComposeAnyConstant) {
  for (const std::uint32_t value : {0u, 1u, 0xFFFFu, 0x10000u, 0xFFFF0000u, 0xFFFFFFFFu,
                                    0x00010001u, 0xA5A5A5A5u}) {
    const CpuState cpu = run("    li r1, " + std::to_string(value) + "\n    hlt\n");
    EXPECT_EQ(cpu.regs[1], value);
  }
}

TEST(MachineProps, CycleClockIsMonotoneAndAdditive) {
  auto object = isa::assemble("    nop\n    nop\n    nop\n    hlt\n");
  ASSERT_TRUE(object.is_ok());
  Machine machine;
  machine.memory().write_block(kCodeBase, object->image);
  machine.cpu().eip = kCodeBase;
  std::uint64_t last = 0;
  while (!machine.halted()) {
    machine.step();
    EXPECT_GT(machine.cycles(), last);
    last = machine.cycles();
  }
  EXPECT_EQ(machine.cycles(), 4u);  // 3 nops + hlt at 1 cycle each
}

TEST(MachineProps, InterruptDuringAnyInstructionPreservesState) {
  // A timer firing at every possible offset within a computation must never
  // change the computed result (context save/restore is exact).
  for (std::uint32_t period = 40; period <= 400; period += 40) {
    auto object = isa::assemble(R"(
        sti
        movi r0, 0
        movi r1, 0
    loop:
        addi r0, 3
        addi r1, 1
        cmpi r1, 200
        jnz  loop
        hlt
    handler:
        iret
    )");
    ASSERT_TRUE(object.is_ok());
    Machine machine;
    auto timer = std::make_shared<TimerDevice>();
    timer->set_irq_sink([&machine](std::uint8_t v) { machine.raise_irq(v); });
    machine.bus().attach(timer);
    machine.memory().write_block(kCodeBase, object->image);
    machine.set_idt_entry(kVecTimer, kCodeBase + object->symbols.at("handler"));
    machine.cpu().eip = kCodeBase;
    machine.cpu().set_sp(kStackTop);
    timer->write32(TimerDevice::kPeriod, period);
    timer->write32(TimerDevice::kCtrl, 1);
    machine.run(2'000'000);
    ASSERT_EQ(machine.halt_reason(), HaltReason::kHltInstruction) << "period " << period;
    EXPECT_EQ(machine.cpu().regs[0], 600u) << "period " << period;
  }
}

}  // namespace
}  // namespace tytan::sim
