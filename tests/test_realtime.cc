// Real-time guarantees (paper §6, Table 1): a high-priority control task
// keeps meeting its deadline while a large task is loaded dynamically,
// because every loading step (copy, relocation, EA-MPU config, measurement)
// is interruptible.
#include <gtest/gtest.h>

#include <sstream>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

/// High-priority periodic control task: pedal -> engine once per tick.
constexpr std::string_view kControlTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r4, 0x100200     ; pedal sensor
    li   r5, 0x100400     ; engine actuator
loop:
    ldw  r2, [r4]
    stw  r2, [r5]
    movi r0, 2            ; kSysDelay
    movi r1, 1
    int  0x21
    jmp  loop
)";

/// A large secure task (~12 KiB with several relocations) whose load takes
/// many scheduling periods — the paper's t2.
std::string big_task_source() {
  std::ostringstream os;
  os << "    .secure\n    .stack 256\n    .entry main\nmain:\n";
  for (int i = 0; i < 8; ++i) {
    os << "    li r2, blob" << i << "\n    ldw r3, [r2]\n";
  }
  os << "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n";
  for (int i = 0; i < 8; ++i) {
    os << "blob" << i << ":\n    .word " << i << "\n    .space 1480\n";
  }
  return os.str();
}

/// Max gap (in cycles) between consecutive engine commands within [from, to].
std::uint64_t max_command_gap(const sim::EngineActuator& engine, std::uint64_t from,
                              std::uint64_t to) {
  std::uint64_t last = from;
  std::uint64_t max_gap = 0;
  for (const auto& command : engine.commands()) {
    if (command.cycle < from || command.cycle > to) {
      continue;
    }
    max_gap = std::max(max_gap, command.cycle - last);
    last = command.cycle;
  }
  max_gap = std::max(max_gap, to - last);
  return max_gap;
}

TEST(RealTime, ControlTaskHoldsRateWhileBigTaskLoads) {
  Platform::Config config;
  config.tick_period = 32'000;  // 1.5 kHz at 48 MHz — the paper's use case
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  platform.pedal().set_value(30);

  auto control = platform.load_task_source(kControlTask, {.name = "t1", .priority = 5});
  ASSERT_TRUE(control.is_ok()) << control.status().to_string();

  // Phase 1: before loading.
  const std::uint64_t t0 = platform.machine().cycles();
  platform.run_for(40 * config.tick_period);
  const std::uint64_t t1 = platform.machine().cycles();

  // Phase 2: while loading t2 asynchronously.
  auto object = isa::assemble(big_task_source());
  ASSERT_TRUE(object.is_ok()) << object.status().to_string();
  ASSERT_GT(object->image.size(), 11'000u);
  auto big = platform.load_task_async(object.take(), {.name = "t2", .priority = 1});
  ASSERT_TRUE(big.is_ok());
  ASSERT_TRUE(platform.run_until([&] { return !platform.load_in_progress(); },
                                 400 * config.tick_period))
      << "load did not finish";
  const std::uint64_t t2 = platform.machine().cycles();
  // The load took multiple scheduling periods (it must be interruptible to
  // matter — the paper's load takes 27.8 ms >> the 0.67 ms period).
  EXPECT_GT(t2 - t1, 5 * config.tick_period);

  // Phase 3: after loading.
  platform.run_for(40 * config.tick_period);
  const std::uint64_t t3 = platform.machine().cycles();

  const auto& engine = platform.engine();
  ASSERT_FALSE(engine.commands().empty());
  // Deadline check: in every phase the control task commanded the engine at
  // least once per ~2 tick periods (tick + scheduling jitter).
  const std::uint64_t deadline = 2 * config.tick_period + config.tick_period / 2;
  EXPECT_LT(max_command_gap(engine, t0 + 2 * config.tick_period, t1), deadline)
      << "missed deadline before loading";
  EXPECT_LT(max_command_gap(engine, t1, t2), deadline) << "missed deadline WHILE loading";
  EXPECT_LT(max_command_gap(engine, t2, t3), deadline) << "missed deadline after loading";

  // And t2 actually became runnable afterwards.
  const rtos::Tcb* big_tcb = platform.scheduler().get(*big);
  ASSERT_NE(big_tcb, nullptr);
  EXPECT_TRUE(big_tcb->measured);
  platform.run_for(20 * config.tick_period);
  EXPECT_GT(big_tcb->activations, 0u);
}

TEST(RealTime, TwoEqualPriorityTasksShareTheCpu) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto a = platform.load_task_source(kControlTask, {.name = "a", .priority = 3});
  auto b = platform.load_task_source(kControlTask, {.name = "b", .priority = 3});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  platform.run_for(3'000'000);
  const auto* ta = platform.scheduler().get(*a);
  const auto* tb = platform.scheduler().get(*b);
  EXPECT_GT(ta->activations, 10u);
  EXPECT_GT(tb->activations, 10u);
}

TEST(RealTime, HigherPriorityPreemptsLower) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  // A low-priority spinner that never yields voluntarily.
  constexpr std::string_view kSpinner = R"(
      .secure
      .stack 128
      .entry main
  main:
      jmp main
  )";
  auto low = platform.load_task_source(kSpinner, {.name = "low", .priority = 1});
  ASSERT_TRUE(low.is_ok());
  platform.run_for(200'000);
  auto high = platform.load_task_source(kControlTask, {.name = "high", .priority = 6});
  ASSERT_TRUE(high.is_ok());
  platform.run_for(2'000'000);
  // The high-priority task runs despite the spinner.
  EXPECT_GT(platform.engine().commands().size(), 10u);
  // And the spinner still makes progress (round-robin at its level when the
  // high one sleeps).
  EXPECT_GT(platform.scheduler().get(*low)->activations, 1u);
}

TEST(RealTime, MeasurementIsPreemptible) {
  // Directly exercise the RTM's quantum structure: begin a measurement of a
  // large task and verify work is split into many bounded quanta.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(big_task_source());
  ASSERT_TRUE(object.is_ok());
  auto task = platform.load_task(object.take(), {.name = "big", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  const auto& stats = platform.rtm().last_measure();
  EXPECT_GT(stats.blocks, 150u);              // ~12 KiB / 64 B
  EXPECT_GT(stats.quanta, stats.blocks);      // at least one quantum per block
  EXPECT_EQ(stats.addresses, 16u);            // 8 li sites = 16 reloc records
}

}  // namespace
}  // namespace tytan
