// A real algorithm in guest assembly: XTEA block encryption implemented in
// Peak-32 runs on the simulated core and must produce bit-identical output
// to the host crypto library.  Exercises the whole ISA (shifts, rotates via
// shifts, table indexing, 32-round loops) plus stdlib printing — strong
// evidence the guest environment is complete enough for real workloads.
#include <gtest/gtest.h>

#include "core/platform.h"
#include "crypto/xtea.h"
#include "isa/stdlib.h"

namespace tytan {
namespace {

using core::Platform;

/// XTEA encipher (64 rounds) over (v0, v1) with key[4], then print both
/// halves as hex.  Loop counter lives in memory (registers are scarce).
constexpr std::string_view kGuestXtea = R"(
    .secure
    .stack 512
    .entry main
main:
    li   r6, v0
    ldw  r1, [r6]          ; r1 = v0
    li   r6, v1
    ldw  r2, [r6]          ; r2 = v1
    movi r3, 0             ; r3 = sum
round:
    ; v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3])
    mov  r4, r2
    shli r4, 4
    mov  r5, r2
    shri r5, 5
    xor  r4, r5
    add  r4, r2
    mov  r5, r3
    andi r5, 3
    shli r5, 2
    li   r6, key
    add  r6, r5
    ldw  r5, [r6]
    add  r5, r3
    xor  r4, r5
    add  r1, r4
    ; sum += DELTA
    li   r0, 0x9E3779B9
    add  r3, r0
    ; v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3])
    mov  r4, r1
    shli r4, 4
    mov  r5, r1
    shri r5, 5
    xor  r4, r5
    add  r4, r1
    mov  r5, r3
    shri r5, 11
    andi r5, 3
    shli r5, 2
    li   r6, key
    add  r6, r5
    ldw  r5, [r6]
    add  r5, r3
    xor  r4, r5
    add  r2, r4
    ; 32 iterations
    li   r6, counter
    ldw  r0, [r6]
    addi r0, 1
    stw  r0, [r6]
    cmpi r0, 32
    jnz  round
    ; print ciphertext halves
    mov  r6, r2            ; save v1 (lib calls preserve regs, but keep tidy)
    mov  r2, r1
    call lib_print_hex
    mov  r2, r6
    call lib_print_hex
    movi r0, 3             ; exit
    int  0x21
key:
    .word 0x03020100, 0x07060504, 0x0B0A0908, 0x0F0E0D0C
v0:
    .word 0x41424344
v1:
    .word 0x45464748
counter:
    .word 0
)";

TEST(GuestCrypto, XteaInGuestAssemblyMatchesHostLibrary) {
  // Host reference: same little-endian key schedule as the guest table.
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  std::uint32_t v0 = 0x41424344, v1 = 0x45464748;
  crypto::xtea_encrypt_block(key, v0, v1);
  char expected[20];
  std::snprintf(expected, sizeof(expected), "%08x%08x", v0, v1);

  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(isa::with_stdlib(kGuestXtea),
                                        {.name = "xtea", .priority = 3});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  ASSERT_TRUE(platform.run_until(
      [&] { return platform.scheduler().get(*task) == nullptr; }, 100'000'000))
      << "guest XTEA did not finish";
  EXPECT_EQ(platform.serial().output(), expected);
}

TEST(GuestCrypto, GuestXteaIsMeasuredAndAttestable) {
  // The crypto task is itself a measured secure task: its identity is stable
  // and its execution is isolated like any other.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto a = platform.load_task_source(isa::with_stdlib(kGuestXtea),
                                     {.name = "a", .auto_start = false});
  auto b = platform.load_task_source(isa::with_stdlib(kGuestXtea),
                                     {.name = "b", .auto_start = false});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(platform.scheduler().get(*a)->identity, platform.scheduler().get(*b)->identity);
}


/// SHA-1 compression of one padded block ("abc"), fully in guest assembly:
/// big-endian word loads, 80-round schedule + compression with the four
/// phase constants, then the 160-bit digest printed as hex.
constexpr std::string_view kGuestSha1 = R"(
    .secure
    .stack 512
    .entry main
main:
    ; ---- w[0..15] = big-endian words of the block ----
    movi r1, 0
load_w:
    li   r6, block
    add  r6, r1
    ldb  r2, [r6]
    shli r2, 8
    ldb  r3, [r6+1]
    or   r2, r3
    shli r2, 8
    ldb  r3, [r6+2]
    or   r2, r3
    shli r2, 8
    ldb  r3, [r6+3]
    or   r2, r3
    li   r6, w
    add  r6, r1
    stw  r2, [r6]
    addi r1, 4
    cmpi r1, 64
    jnz  load_w
    ; ---- message schedule w[16..79] ----
    movi r1, 64
extend:
    li   r6, w
    add  r6, r1
    ldw  r2, [r6-12]
    ldw  r3, [r6-32]
    xor  r2, r3
    ldw  r3, [r6-56]
    xor  r2, r3
    ldw  r3, [r6-64]
    xor  r2, r3
    mov  r3, r2
    shli r2, 1
    shri r3, 31
    or   r2, r3          ; rotl1
    stw  r2, [r6]
    addi r1, 4
    cmpi r1, 320
    jnz  extend
    ; ---- a..e := h0..h4 ----
    movi r1, 0
copy_init:
    li   r6, h0
    add  r6, r1
    ldw  r2, [r6]
    li   r6, va
    add  r6, r1
    stw  r2, [r6]
    addi r1, 4
    cmpi r1, 20
    jnz  copy_init
    ; ---- 80 rounds ----
    movi r1, 0
rounds:
    li   r6, vb
    ldw  r2, [r6]        ; b
    li   r6, vc
    ldw  r3, [r6]        ; c
    li   r6, vd
    ldw  r4, [r6]        ; d
    cmpi r1, 80
    jc   f_ch
    cmpi r1, 160
    jc   f_par1
    cmpi r1, 240
    jc   f_maj
    xor  r3, r2
    xor  r3, r4          ; parity
    li   r5, 0xCA62C1D6
    jmp  f_done
f_ch:
    xor  r3, r4
    and  r3, r2
    xor  r3, r4          ; d ^ (b & (c ^ d))
    li   r5, 0x5A827999
    jmp  f_done
f_par1:
    xor  r3, r2
    xor  r3, r4
    li   r5, 0x6ED9EBA1
    jmp  f_done
f_maj:
    mov  r0, r2
    and  r0, r3
    mov  r6, r2
    and  r6, r4
    or   r0, r6
    mov  r6, r3
    and  r6, r4
    or   r0, r6
    mov  r3, r0
    li   r5, 0x8F1BBCDC
f_done:
    li   r6, va
    ldw  r2, [r6]        ; a
    mov  r4, r2
    shli r2, 5
    shri r4, 27
    or   r2, r4          ; rotl5(a)
    add  r2, r3          ; + f
    li   r6, ve
    ldw  r4, [r6]
    add  r2, r4          ; + e
    add  r2, r5          ; + k
    li   r6, w
    add  r6, r1
    ldw  r4, [r6]
    add  r2, r4          ; + w[i]
    ; shift the working registers
    li   r6, vd
    ldw  r4, [r6]
    li   r6, ve
    stw  r4, [r6]
    li   r6, vc
    ldw  r4, [r6]
    li   r6, vd
    stw  r4, [r6]
    li   r6, vb
    ldw  r4, [r6]
    mov  r3, r4
    shli r4, 30
    shri r3, 2
    or   r4, r3          ; rotl30(b)
    li   r6, vc
    stw  r4, [r6]
    li   r6, va
    ldw  r4, [r6]
    li   r6, vb
    stw  r4, [r6]
    li   r6, va
    stw  r2, [r6]
    addi r1, 4
    cmpi r1, 320
    jnz  rounds
    ; ---- h[j] += v[j]; print digest ----
    movi r1, 0
final:
    li   r6, h0
    add  r6, r1
    ldw  r2, [r6]
    li   r6, va
    add  r6, r1
    ldw  r3, [r6]
    add  r2, r3
    call lib_print_hex
    addi r1, 4
    cmpi r1, 20
    jnz  final
    movi r0, 3
    int  0x21
block:
    .byte 0x61, 0x62, 0x63, 0x80   ; "abc" + pad
    .space 59
    .byte 0x18                     ; bit length 24, big endian
w:
    .space 320
h0:
    .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0
va: .word 0
vb: .word 0
vc: .word 0
vd: .word 0
ve: .word 0
)";

TEST(GuestCrypto, Sha1InGuestAssemblyMatchesFipsVector) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(isa::with_stdlib(kGuestSha1));
  ASSERT_TRUE(object.is_ok()) << object.status().to_string();
  // The li-heavy inner loops make this the most relocation-dense binary in
  // the repo; position-independent measurement must still hold.
  EXPECT_GT(object->relocs.size(), 40u);
  auto task = platform.load_task(object.take(), {.name = "sha1", .priority = 3});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  ASSERT_TRUE(platform.run_until(
      [&] { return platform.scheduler().get(*task) == nullptr; }, 200'000'000))
      << "guest SHA-1 did not finish";
  EXPECT_EQ(platform.serial().output(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

}  // namespace
}  // namespace tytan
