// Kernel syscall surface: results, edge cases, and misuse handling.
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

/// Builds a one-shot task that performs a syscall with the given registers,
/// then prints 'Y' if saved r0 == expected, 'N' otherwise, then exits.
std::string syscall_probe(unsigned number, std::uint32_t r1, std::uint32_t r2,
                          std::uint32_t r3, std::int64_t expect_r0, bool secure = true) {
  std::string s;
  if (secure) {
    s += "    .secure\n";
  }
  s += "    .stack 256\n    .entry main\nmain:\n";
  s += "    movi r0, " + std::to_string(number) + "\n";
  s += "    li r1, " + std::to_string(r1) + "\n";
  s += "    li r2, " + std::to_string(r2) + "\n";
  s += "    li r3, " + std::to_string(r3) + "\n";
  s += "    int  0x21\n";
  s += "    cmpi r0, " + std::to_string(expect_r0) + "\n";
  s += R"(    jz  yes
    movi r1, 78        ; 'N'
    jmp  report
yes:
    movi r1, 89        ; 'Y'
report:
    movi r0, 4
    int  0x21
    movi r0, 3
    int  0x21
)";
  return s;
}

std::string run_probe(const std::string& source) {
  Platform platform;
  EXPECT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(source, {.name = "probe", .priority = 3});
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000);
  return platform.serial().output();
}

TEST(Syscall, UnknownNumberReturnsError) {
  EXPECT_EQ(run_probe(syscall_probe(99, 0, 0, 0, -1)), "Y");
}

TEST(Syscall, GetTickReturnsCounter) {
  // Right after start the tick count is small but the call must succeed
  // (result != kSysErr); compare against -1 and expect 'N'.
  EXPECT_EQ(run_probe(syscall_probe(core::kSysGetTick, 0, 0, 0, -1)), "N");
}

TEST(Syscall, WaitMsgRejectedForNormalTask) {
  EXPECT_EQ(run_probe(syscall_probe(core::kSysWaitMsg, 0, 0, 0, -1, /*secure=*/false)),
            "Y");
}

TEST(Syscall, MsgDoneWithoutMessageIsError) {
  EXPECT_EQ(run_probe(syscall_probe(core::kSysMsgDone, 0, 0, 0, -1)), "Y");
}

TEST(Syscall, QueueOpsRejectedForSecureTask) {
  EXPECT_EQ(run_probe(syscall_probe(core::kSysQueueSend, 0, 0, 0, -1)), "Y");
}

TEST(Syscall, SealLoadOnEmptySlotIsError) {
  // r1 points at the task's own stack area (readable); slot 9 is empty.
  EXPECT_EQ(run_probe(syscall_probe(core::kSysSealLoad, 0, 16, 9, -1)), "Y");
}

TEST(Syscall, SealStoreWithForeignPointerFails) {
  // Pointing the store buffer at another task's memory must fail: the
  // storage service reads under its own identity, but the *caller* gains
  // nothing — and a pointer into protected foreign memory is rejected by
  // size/era checks or returns garbage it already... the contract here: the
  // call must not crash the platform and must not return success for an
  // unreadable range (beyond physical memory).
  EXPECT_EQ(run_probe(syscall_probe(core::kSysSealStore, 0x1F0000, 16, 3, -1)), "Y");
}

TEST(Syscall, GetIdWritesOwnIdentity) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  constexpr std::string_view kSource = R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 14         ; kSysGetId
      li   r1, idbuf
      int  0x21
      cmpi r0, 0
      jnz  fail
      li   r2, idbuf      ; print first identity byte
      ldb  r1, [r2]
      movi r0, 4
      int  0x21
      jmp  done
  fail:
      movi r1, 33         ; '!'
      movi r0, 4
      int  0x21
  done:
      movi r0, 3
      int  0x21
  idbuf:
      .space 8
  )";
  auto task = platform.load_task_source(kSource, {.name = "who", .priority = 3});
  ASSERT_TRUE(task.is_ok());
  const rtos::TaskIdentity id = platform.scheduler().get(*task)->identity;
  platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000);
  ASSERT_EQ(platform.serial().output().size(), 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(platform.serial().output()[0]), id[0]);
}

TEST(Syscall, LocalAttestFindsLoadedPeer) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto peer = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r0, 1
      int  0x21
      jmp  main
  )", {.name = "peer", .priority = 2});
  ASSERT_TRUE(peer.is_ok());
  const rtos::TaskIdentity peer_id = platform.scheduler().get(*peer)->identity;

  constexpr std::string_view kVerifier = R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 15         ; kSysLocalAttest
      li   r1, peer_id
      int  0x21
      cmpi r0, 0
      jz   present
      movi r1, 45         ; '-'
      jmp  report
  present:
      movi r1, 43         ; '+'
  report:
      movi r0, 4
      int  0x21
      movi r0, 3
      int  0x21
  peer_id:
      .space 8
  )";
  auto verifier = platform.load_task_source(kVerifier, {.name = "verifier", .priority = 3,
                                                        .auto_start = false});
  ASSERT_TRUE(verifier.is_ok());
  // Provision the peer identity (task-developer step).
  auto probe = isa::assemble(kVerifier);
  const std::uint32_t addr =
      platform.scheduler().get(*verifier)->region_base + probe->symbols.at("peer_id");
  for (unsigned i = 0; i < 8; ++i) {
    platform.machine().memory().write8(addr + i, peer_id[i]);
  }
  ASSERT_TRUE(platform.resume_task(*verifier).is_ok());
  platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000);
  EXPECT_EQ(platform.serial().output(), "+");

  // After unloading the peer, the same query fails.
  ASSERT_TRUE(platform.unload_task(*peer).is_ok());
  platform.serial().clear();
  auto verifier2 = platform.load_task_source(kVerifier, {.name = "verifier2", .priority = 3,
                                                         .auto_start = false});
  ASSERT_TRUE(verifier2.is_ok());
  const std::uint32_t addr2 =
      platform.scheduler().get(*verifier2)->region_base + probe->symbols.at("peer_id");
  for (unsigned i = 0; i < 8; ++i) {
    platform.machine().memory().write8(addr2 + i, peer_id[i]);
  }
  ASSERT_TRUE(platform.resume_task(*verifier2).is_ok());
  platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000);
  EXPECT_EQ(platform.serial().output(), "-");
}

TEST(Syscall, ExitUnloadsAndFreesSlotUnderLoad) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  const std::size_t slots_before = platform.mpu().slots_in_use();
  for (int round = 0; round < 5; ++round) {
    auto task = platform.load_task_source(R"(
        .secure
        .stack 128
        .entry main
    main:
        movi r0, 3
        int  0x21
    )", {.name = "ephemeral" + std::to_string(round), .priority = 3});
    ASSERT_TRUE(task.is_ok());
    platform.run_until([&] { return platform.scheduler().get(*task) == nullptr; },
                       5'000'000);
    EXPECT_EQ(platform.scheduler().get(*task), nullptr);
  }
  EXPECT_EQ(platform.mpu().slots_in_use(), slots_before);
}

TEST(Syscall, DelayActuallyDelays) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  // Prints one char, sleeps 10 ticks, prints another.
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r0, 4
      movi r1, 97
      int  0x21
      movi r0, 2
      movi r1, 10
      int  0x21
      movi r0, 4
      movi r1, 98
      int  0x21
      movi r0, 3
      int  0x21
  )", {.name = "sleepy", .priority = 3});
  ASSERT_TRUE(task.is_ok());
  platform.run_until([&] { return platform.serial().output() == "a"; }, 5'000'000);
  const std::uint64_t t_a = platform.machine().cycles();
  platform.run_until([&] { return platform.serial().output() == "ab"; }, 50'000'000);
  const std::uint64_t t_b = platform.machine().cycles();
  EXPECT_GE(t_b - t_a, 9ull * platform.config().tick_period);
}

TEST(Queues, NormalTasksExchangeDataThroughOsQueues) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto queue = platform.kernel().queues().create(4);
  ASSERT_TRUE(queue.is_ok());
  const std::string producer =
      "    .stack 128\n    .entry main\nmain:\n"
      "    li   r2, buf\n    movi r3, 77\n    stw  r3, [r2]\n"
      "    movi r0, 12\n    movi r1, " + std::to_string(*queue) + "\n"
      "    mov  r2, r2\n    li r2, buf\n    int  0x21\n"
      "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n"
      "buf:\n    .space 16\n";
  const std::string consumer =
      "    .stack 128\n    .entry main\nmain:\n"
      "retry:\n"
      "    movi r0, 13\n    movi r1, " + std::to_string(*queue) + "\n"
      "    li   r2, buf\n    int  0x21\n"
      "    cmpi r0, 0\n    jnz  retry_delay\n"
      "    li   r2, buf\n    ldw  r1, [r2]\n    movi r0, 4\n    int 0x21\n"
      "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n"
      "retry_delay:\n    movi r0, 2\n    movi r1, 1\n    int 0x21\n    jmp retry\n"
      "buf:\n    .space 16\n";
  auto p = platform.load_task_source(producer, {.name = "producer", .priority = 3});
  auto c = platform.load_task_source(consumer, {.name = "consumer", .priority = 3});
  ASSERT_TRUE(p.is_ok()) << p.status().to_string();
  ASSERT_TRUE(c.is_ok()) << c.status().to_string();
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 30'000'000));
  EXPECT_EQ(platform.serial().output()[0], 77);
}

}  // namespace
}  // namespace tytan
