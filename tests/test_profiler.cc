// The guest-PC sampling profiler: ring behavior, symbol resolution through
// the loader's side tables, flamegraph export — and the cost invariant:
// enabling the profiler never changes a simulated cycle count.
#include <gtest/gtest.h>

#include <sstream>

#include "core/platform.h"
#include "obs/profiler.h"

namespace tytan::obs {
namespace {

constexpr std::string_view kHotTask = R"(
    .secure
    .stack 256
    .entry main
main:
    call hotloop
    jmp  main
hotloop:
    movi r2, 200
spin:
    subi r2, 1
    jnz  spin
    ret
)";

// ---------------------------------------------------------------- unit level

TEST(SampleProfiler, SamplesAtTheConfiguredInterval) {
  SampleProfiler profiler(/*interval_cycles=*/100, /*capacity=*/16);
  EXPECT_FALSE(profiler.due(0));
  EXPECT_FALSE(profiler.due(99));
  EXPECT_TRUE(profiler.due(100));
  profiler.take(100, 0x1000, 1);
  EXPECT_FALSE(profiler.due(150));
  EXPECT_TRUE(profiler.due(200));
  // Skip-tolerant: a late owner reschedules from the observed cycle, not by
  // replaying missed ticks.
  profiler.take(1000, 0x1004, 1);
  EXPECT_FALSE(profiler.due(1050));
  EXPECT_TRUE(profiler.due(1100));
  EXPECT_EQ(profiler.taken(), 2u);
  EXPECT_EQ(profiler.size(), 2u);
}

TEST(SampleProfiler, RingKeepsMostRecentAndCountsDrops) {
  SampleProfiler profiler(1, /*capacity=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    profiler.take(i + 1, 0x100 + i * 4, 0);
  }
  EXPECT_EQ(profiler.taken(), 10u);
  EXPECT_EQ(profiler.size(), 4u);
  EXPECT_EQ(profiler.dropped(), 6u);
  const auto samples = profiler.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().pc, 0x100u + 6 * 4);  // oldest kept
  EXPECT_EQ(samples.back().pc, 0x100u + 9 * 4);   // newest
}

TEST(SampleProfiler, ResolvesRegionsGlobalsAndFallbacks) {
  SampleProfiler profiler;
  profiler.add_global_symbol(0x9000, "fw:ipc-proxy");
  profiler.add_region(/*task=*/3, "sensor", /*base=*/0x4000, /*size=*/0x100,
                      {{"main", 0}, {"loop", 0x20}, {"done", 0x80}});

  const auto fw = profiler.resolve({.cycle = 1, .pc = 0x9000, .task = -1});
  EXPECT_EQ(fw.task, "firmware");
  EXPECT_EQ(fw.symbol, "fw:ipc-proxy");

  const auto mid = profiler.resolve({.cycle = 2, .pc = 0x4024, .task = 3});
  EXPECT_EQ(mid.task, "sensor");
  EXPECT_EQ(mid.symbol, "loop");  // greatest label at or below the PC

  const auto first = profiler.resolve({.cycle = 3, .pc = 0x4000, .task = 3});
  EXPECT_EQ(first.symbol, "main");

  // Outside every region and not a firmware address: raw-address fallback.
  const auto unknown = profiler.resolve({.cycle = 4, .pc = 0x7777, .task = 9});
  EXPECT_EQ(unknown.task, "task 9");
  EXPECT_EQ(unknown.symbol, "0x7777");

  profiler.remove_region(3);
  const auto gone = profiler.resolve({.cycle = 5, .pc = 0x4024, .task = 3});
  EXPECT_EQ(gone.task, "task 3");
}

TEST(SampleProfiler, FoldedStacksAggregateByFrame) {
  SampleProfiler profiler(1, 64);
  profiler.add_region(1, "hot", 0x1000, 0x100, {{"a", 0}, {"b", 0x10}});
  profiler.take(1, 0x1000, 1);
  profiler.take(2, 0x1004, 1);
  profiler.take(3, 0x1010, 1);
  const std::string folded = profiler.folded();
  EXPECT_EQ(folded, "hot;a 2\nhot;b 1\n");
}

// -------------------------------------------------------------- end to end

TEST(Profiler, HotSymbolDominatesTheFlamegraph) {
  core::Platform platform;
  platform.machine().enable_profiler(/*interval_cycles=*/997);
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kHotTask, {.name = "hot"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_for(2'000'000);

  const SampleProfiler* profiler = platform.machine().profiler();
  ASSERT_NE(profiler, nullptr);
  EXPECT_GT(profiler->taken(), 1000u);

  // The busy-wait loop must dominate: find the heaviest folded frame.
  std::istringstream folded(profiler->folded());
  EXPECT_FALSE(profiler->folded().empty());
  std::string heaviest;
  std::uint64_t heaviest_count = 0;
  std::uint64_t total = 0;
  std::string frame;
  std::uint64_t count = 0;
  while (folded >> frame >> count) {
    total += count;
    if (count > heaviest_count) {
      heaviest_count = count;
      heaviest = frame;
    }
  }
  EXPECT_EQ(heaviest, "hot;spin");
  EXPECT_GT(heaviest_count * 2, total);  // an absolute majority of samples
}

TEST(Profiler, FirmwareSamplesResolveToFirmwareFrames) {
  core::Platform platform;
  platform.machine().enable_profiler(101);  // dense enough to catch the idle task
  ASSERT_TRUE(platform.boot().is_ok());
  platform.run_for(500'000);
  const std::string folded = platform.machine().profiler()->folded();
  EXPECT_NE(folded.find("firmware;"), std::string::npos) << folded;
}

// The cost invariant, profiler edition: identical simulated state with the
// profiler on and off.
TEST(Profiler, SamplingLeavesCycleCountsBitIdentical) {
  auto run = [](bool profile) {
    core::Platform platform;
    if (profile) {
      platform.machine().enable_profiler(997);
    }
    EXPECT_TRUE(platform.boot().is_ok());
    auto task = platform.load_task_source(kHotTask, {.name = "hot"});
    EXPECT_TRUE(task.is_ok());
    platform.run_for(1'000'000);
    return std::pair{platform.machine().cycles(),
                     platform.machine().instructions_executed()};
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

TEST(Profiler, DisableResetsAndReenableRestarts) {
  core::Platform platform;
  platform.machine().enable_profiler(500);
  ASSERT_TRUE(platform.boot().is_ok());
  platform.run_for(100'000);
  ASSERT_NE(platform.machine().profiler(), nullptr);
  EXPECT_GT(platform.machine().profiler()->taken(), 0u);
  platform.machine().enable_profiler(0);  // off
  EXPECT_EQ(platform.machine().profiler(), nullptr);
  platform.machine().enable_profiler(500);  // back on, fresh
  EXPECT_EQ(platform.machine().profiler()->taken(), 0u);
  platform.run_for(100'000);
  EXPECT_GT(platform.machine().profiler()->taken(), 0u);
}

}  // namespace
}  // namespace tytan::obs
