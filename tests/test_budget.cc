// CPU-time accounting and execution-time bounding (paper §5: tasks are
// "bound in their use of system resources (e.g., execution time or
// memory)", so a compromised task cannot disturb the platform's
// availability).
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

constexpr std::string_view kSpinner = R"(
    .secure
    .stack 128
    .entry main
main:
    addi r5, 1
    jmp  main
)";

constexpr std::string_view kYielder = R"(
    .secure
    .stack 128
    .entry main
main:
    movi r0, 1
    int  0x21
    jmp  main
    .word 2
)";

TEST(Accounting, CpuCyclesAttributedToTasks) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto spin = platform.load_task_source(kSpinner, {.name = "spin", .priority = 3});
  auto idle_ish = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r0, 2
      movi r1, 20
      int  0x21
      jmp  main
  )", {.name = "sleeper", .priority = 4});
  ASSERT_TRUE(spin.is_ok());
  ASSERT_TRUE(idle_ish.is_ok());
  platform.run_for(3'000'000);
  const rtos::Tcb* s = platform.scheduler().get(*spin);
  const rtos::Tcb* t = platform.scheduler().get(*idle_ish);
  // The spinner consumed the bulk of the CPU; the sleeper a sliver.
  EXPECT_GT(s->cpu_cycles, 1'000'000u);
  EXPECT_LT(t->cpu_cycles, s->cpu_cycles / 20);
  // Attribution is sane: no task was charged more than wall time.
  EXPECT_LT(s->cpu_cycles, platform.machine().cycles());
}

TEST(Budget, ThrottledSpinnerLeavesRoomForLowerPriority) {
  // Without a budget, a high-priority spinner starves everything below it;
  // with one, the lower-priority task runs every tick.
  for (const bool budgeted : {false, true}) {
    Platform platform;
    ASSERT_TRUE(platform.boot().is_ok());
    auto hog = platform.load_task_source(kSpinner, {.name = "hog", .priority = 5});
    auto meek = platform.load_task_source(kYielder, {.name = "meek", .priority = 2});
    ASSERT_TRUE(hog.is_ok());
    ASSERT_TRUE(meek.is_ok());
    if (budgeted) {
      ASSERT_TRUE(platform.set_task_budget(*hog, 10'000).is_ok());
    }
    platform.run_for(40 * platform.config().tick_period);
    const rtos::Tcb* m = platform.scheduler().get(*meek);
    const rtos::Tcb* h = platform.scheduler().get(*hog);
    if (budgeted) {
      EXPECT_GT(m->activations, 20u) << "meek task starved despite the budget";
      EXPECT_GT(h->throttle_events, 20u);
      // The hog consumed roughly its budget per tick, not the whole tick.
      EXPECT_LT(h->cpu_cycles, platform.machine().cycles() / 2);
    } else {
      EXPECT_EQ(m->activations, 0u);  // fully starved
      EXPECT_EQ(h->throttle_events, 0u);
    }
  }
}

TEST(Budget, BudgetRefillsEveryTick) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto hog = platform.load_task_source(kSpinner, {.name = "hog", .priority = 5});
  ASSERT_TRUE(hog.is_ok());
  ASSERT_TRUE(platform.set_task_budget(*hog, 8'000).is_ok());
  platform.run_for(60 * platform.config().tick_period);
  const rtos::Tcb* h = platform.scheduler().get(*hog);
  // Leaky bucket: it keeps getting windows (refill) at a duty cycle near
  // budget / tick_period = 8k / 48k.
  EXPECT_GT(h->activations, 5u);
  const double share = static_cast<double>(h->cpu_cycles) /
                       static_cast<double>(platform.machine().cycles());
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.40);
}

TEST(Budget, LiftingBudgetRestoresFullShare) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto hog = platform.load_task_source(kSpinner, {.name = "hog", .priority = 5});
  ASSERT_TRUE(hog.is_ok());
  ASSERT_TRUE(platform.set_task_budget(*hog, 5'000).is_ok());
  platform.run_for(10 * platform.config().tick_period);
  const std::uint64_t throttles = platform.scheduler().get(*hog)->throttle_events;
  EXPECT_GT(throttles, 0u);
  ASSERT_TRUE(platform.set_task_budget(*hog, 0).is_ok());
  platform.run_for(10 * platform.config().tick_period);
  EXPECT_EQ(platform.scheduler().get(*hog)->throttle_events, throttles);
}

TEST(Budget, UnknownTaskRejected) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  EXPECT_FALSE(platform.set_task_budget(777, 1'000).is_ok());
}

}  // namespace
}  // namespace tytan
