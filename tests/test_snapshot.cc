// Versioned machine snapshots: the restore(save(m)) == m contract.
//
// The tentpole guarantees under test:
//   * restore(save(m)) is bit-identical — saving again yields byte-identical
//     snapshot content;
//   * a restored platform re-executes identically (same cycle counts, same
//     serial output, same faults), including under an active fault plan and
//     from a mid-measurement save point;
//   * two clones of one platform run bit-identically (no hidden mutable
//     statics feed guest-visible state);
//   * truncated / corrupt / wrong-version files parse to a typed one-line
//     error, never to a half-restored machine.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/platform.h"
#include "snap/snapshot.h"

namespace tytan {
namespace {

constexpr std::string_view kCounterTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, counter
    ldw  r3, [r2]
    addi r3, 1
    stw  r3, [r2]
    movi r0, 1          ; kSysYield
    int  0x21
    jmp  main
counter:
    .word 0
)";

/// Serialized wire image of a platform's full state (the bit-identity probe).
ByteVec state_bytes(const core::Platform& platform) {
  auto snapshot = platform.save();
  EXPECT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();
  return snapshot->serialize();
}

void boot_with_counter(core::Platform& platform) {
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(kCounterTask, {.name = "counter"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
}

TEST(Snapshot, SchemaGoldenTagList) {
  core::Platform platform;
  snap::ListVisitor visitor;
  ASSERT_TRUE(platform.visit_state(visitor).is_ok());
  // This list IS the wire schema.  If this test fails you changed the
  // section catalogue: bump snap::kSchemaVersion and update docs/SNAPSHOT.md.
  const std::vector<std::string> expected = {
      "CONF", "PLAT", "MACH", "MEMR", "DEVS", "TRCE", "EMPU", "DRVS", "SCHD",
      "KRNL", "IMUX", "LOAD", "RTMS", "STOR", "IPCP", "UPDT", "FALT"};
  EXPECT_EQ(visitor.tags(), expected);
  EXPECT_EQ(snap::kSchemaVersion, 1u);
}

// Restoring the same snapshot repeatedly takes the dirty-range rewind fast
// path (PhysicalMemory dirty tracking); it must land on exactly the state a
// from-scratch full restore produces — the fork-fuzzing loop depends on it.
TEST(Snapshot, RewindFastPathMatchesFullRestore) {
  core::Platform platform;
  boot_with_counter(platform);
  platform.run_for(200'000);

  auto pristine = platform.save();
  ASSERT_TRUE(pristine.is_ok()) << pristine.status().to_string();

  // First restore records the digest; the runs in between dirty memory; the
  // later restores rewind only the dirty range.
  ASSERT_TRUE(platform.restore(*pristine).is_ok());
  for (int i = 0; i < 3; ++i) {
    platform.run_for(50'000 * (i + 1));
    ASSERT_TRUE(platform.restore(*pristine).is_ok());
    EXPECT_EQ(state_bytes(platform), pristine->serialize()) << "rewind " << i;
  }

  // A fresh platform restoring the same snapshot (full path, no digest
  // match) re-executes in lockstep with the rewound one.
  core::Platform full{platform.config()};
  ASSERT_TRUE(full.restore(*pristine).is_ok());
  platform.run_for(100'000);
  full.run_for(100'000);
  EXPECT_EQ(state_bytes(platform), state_bytes(full));
}

TEST(Snapshot, RoundTripIsBitIdentical) {
  core::Platform platform;
  boot_with_counter(platform);
  platform.run_for(500'000);

  auto first = platform.save();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  ASSERT_TRUE(platform.restore(*first).is_ok());
  auto second = platform.save();
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(first->serialize(), second->serialize());

  // The container round-trips through its own wire format ...
  auto reparsed = snap::Snapshot::parse(first->serialize());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed->serialize(), first->serialize());
  // ... and the recorded cycle is the machine's clock at save time.
  auto cycle = core::Platform::snapshot_cycle(*first);
  ASSERT_TRUE(cycle.is_ok());
  EXPECT_EQ(*cycle, platform.machine().cycles());
}

TEST(Snapshot, RestoredPlatformReexecutesIdentically) {
  core::Platform original;
  boot_with_counter(original);
  original.run_for(200'000);
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();

  core::Platform restored;
  ASSERT_TRUE(restored.restore(*snapshot).is_ok());
  EXPECT_EQ(state_bytes(original), state_bytes(restored));

  original.run_for(1'000'000);
  restored.run_for(1'000'000);
  EXPECT_EQ(original.machine().cycles(), restored.machine().cycles());
  EXPECT_EQ(original.machine().instructions_executed(),
            restored.machine().instructions_executed());
  EXPECT_EQ(original.serial().output(), restored.serial().output());
  EXPECT_EQ(state_bytes(original), state_bytes(restored));
}

TEST(Snapshot, CorpusProgramsReexecuteIdentically) {
  const std::filesystem::path dir(TYTAN_ASM_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t programs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".s") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream source;
    source << in.rdbuf();

    core::Platform original;
    ASSERT_TRUE(original.boot().is_ok());
    auto task = original.load_task_source(source.str(),
                                          {.name = entry.path().stem().string()});
    if (!task.is_ok()) {
      continue;  // corpus files that need a harness are out of scope here
    }
    original.run_for(100'000);
    auto snapshot = original.save();
    ASSERT_TRUE(snapshot.is_ok()) << entry.path() << ": " << snapshot.status().to_string();

    core::Platform restored;
    ASSERT_TRUE(restored.restore(*snapshot).is_ok()) << entry.path();
    original.run_for(400'000);
    restored.run_for(400'000);
    EXPECT_EQ(state_bytes(original), state_bytes(restored)) << entry.path();
    ++programs;
  }
  EXPECT_GE(programs, 3u) << "corpus should exercise several programs";
}

TEST(Snapshot, FaultedRunReexecutesIdentically) {
  auto plan = fault::FaultPlan::parse("tbf-bitflip@load:victim");
  ASSERT_TRUE(plan.is_ok());
  core::Platform::Config config;
  config.fault_plan = *plan;

  core::Platform original(config);
  ASSERT_TRUE(original.boot().is_ok());
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();

  core::Platform restored(config);
  ASSERT_TRUE(restored.restore(*snapshot).is_ok());

  // Both platforms now take the same bit flip at the same load and must end
  // in identical states — the engine's RNG cursor travelled with the
  // snapshot.
  for (core::Platform* platform : {&original, &restored}) {
    auto task = platform->load_task_source(kCounterTask, {.name = "victim"});
    (void)task;  // the flip may or may not break the load; both must agree
    platform->run_for(500'000);
  }
  ASSERT_NE(original.fault_engine(), nullptr);
  EXPECT_EQ(original.fault_engine()->injected_total(),
            restored.fault_engine()->injected_total());
  EXPECT_EQ(state_bytes(original), state_bytes(restored));
}

TEST(Snapshot, MidMeasurementSaveReexecutesIdentically) {
  core::Platform original;
  ASSERT_TRUE(original.boot().is_ok());
  auto object = isa::assemble(kCounterTask);
  ASSERT_TRUE(object.is_ok());
  // Pad the image so copying and measuring it spans many loader quanta —
  // the save below must land mid-measurement, with the RTM's incremental
  // SHA-1 state in flight.
  for (int i = 0; i < 4'000; ++i) {
    append_le32(object->image, 0);
  }
  auto task = original.load_task_async(*object, {.name = "counter"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  // Advance until the loader/RTM job is genuinely mid-flight, then save.
  original.run_for(3 * original.config().tick_period);
  ASSERT_TRUE(original.load_in_progress());
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();

  core::Platform restored;
  ASSERT_TRUE(restored.restore(*snapshot).is_ok());
  EXPECT_TRUE(restored.load_in_progress());

  ASSERT_TRUE(original.run_until([&] { return !original.load_in_progress(); },
                                 20'000'000));
  ASSERT_TRUE(restored.run_until([&] { return !restored.load_in_progress(); },
                                 20'000'000));
  EXPECT_EQ(original.rtm().entries().size(), 1u);
  EXPECT_EQ(state_bytes(original), state_bytes(restored));
}

TEST(Snapshot, TwoClonesRunBitIdentically) {
  core::Platform original;
  boot_with_counter(original);
  original.run_for(250'000);

  auto first = original.clone();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second = original.clone();
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  // Hidden mutable statics or lazily-initialized caches would make the two
  // clones drift; bit-identical state after a long run proves there are none
  // feeding guest-visible state.
  (*first)->run_for(2'000'000);
  (*second)->run_for(2'000'000);
  EXPECT_EQ(state_bytes(**first), state_bytes(**second));
  EXPECT_EQ((*first)->serial().output(), (*second)->serial().output());
  EXPECT_EQ((*first)->machine().cycles(), (*second)->machine().cycles());
}

TEST(Snapshot, SaveRefusesStateThatCannotTravel) {
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());

  // Active software timers hold host closures.
  ASSERT_TRUE(platform.kernel()
                  .timers()
                  .create_oneshot(platform.kernel().tick_count() + 100,
                                  [](rtos::TimerHandle) {})
                  .is_ok());
  auto refused = platform.save();
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.status().code(), Err::kUnavailable);

  // An async load carrying an on_loaded callback (hitless updates).
  core::Platform other;
  ASSERT_TRUE(other.boot().is_ok());
  auto object = isa::assemble(kCounterTask);
  ASSERT_TRUE(object.is_ok());
  bool done = false;
  auto task = other.load_task_async(
      *object, {.name = "counter", .on_loaded = [&](rtos::TaskHandle) { done = true; }});
  ASSERT_TRUE(task.is_ok());
  auto also_refused = other.save();
  ASSERT_FALSE(also_refused.is_ok());
  EXPECT_EQ(also_refused.status().code(), Err::kUnavailable);
  // Once the callback has fired the platform is snapshottable again.
  ASSERT_TRUE(other.run_until([&] { return done; }, 20'000'000));
  EXPECT_TRUE(other.save().is_ok());
}

TEST(Snapshot, RestoreRejectsIncompatiblePlatform) {
  core::Platform original;
  ASSERT_TRUE(original.boot().is_ok());
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok());

  core::Platform::Config config;
  config.rng_seed = 0xdead'beef;
  core::Platform different(config);
  Status s = different.restore(*snapshot);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("incompatible"), std::string::npos) << s.to_string();
}

TEST(Snapshot, ParseRejectsDamagedFiles) {
  core::Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto snapshot = platform.save();
  ASSERT_TRUE(snapshot.is_ok());
  const ByteVec wire = snapshot->serialize();

  // Empty / header-less.
  auto empty = snap::Snapshot::parse({});
  ASSERT_FALSE(empty.is_ok());
  EXPECT_NE(empty.status().message().find("no header"), std::string::npos);

  // Wrong magic.
  ByteVec bad_magic = wire;
  bad_magic[0] ^= 0xff;
  auto not_tysn = snap::Snapshot::parse(bad_magic);
  ASSERT_FALSE(not_tysn.is_ok());
  EXPECT_NE(not_tysn.status().message().find("TYSN"), std::string::npos);

  // Unsupported schema version.
  ByteVec future = wire;
  future[4] = 99;
  auto wrong_version = snap::Snapshot::parse(future);
  ASSERT_FALSE(wrong_version.is_ok());
  EXPECT_EQ(wrong_version.status().code(), Err::kInvalidArgument);
  EXPECT_NE(wrong_version.status().message().find("version"), std::string::npos);

  // Truncation (mid-section).
  const ByteVec truncated(wire.begin(), wire.begin() + static_cast<long>(wire.size() / 2));
  EXPECT_FALSE(snap::Snapshot::parse(truncated).is_ok());

  // Payload corruption is caught by the checksum.
  ByteVec corrupt = wire;
  corrupt[wire.size() / 2] ^= 0x40;
  auto flipped = snap::Snapshot::parse(corrupt);
  ASSERT_FALSE(flipped.is_ok());
  EXPECT_NE(flipped.status().message().find("checksum"), std::string::npos);
}

TEST(Snapshot, FileRoundTripAndConfigRecovery) {
  core::Platform original;
  boot_with_counter(original);
  original.run_for(300'000);
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok());

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "tytan_test.tysn").string();
  ASSERT_TRUE(snapshot->write_file(path).is_ok());
  auto loaded = snap::Snapshot::read_file(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->serialize(), snapshot->serialize());

  // Replay tooling path: rebuild a compatible platform from the file alone.
  auto config = core::Platform::config_from_snapshot(*loaded);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  core::Platform replayed(*config);
  ASSERT_TRUE(replayed.restore(*loaded).is_ok());
  original.run_for(500'000);
  replayed.run_for(500'000);
  EXPECT_EQ(state_bytes(original), state_bytes(replayed));
  std::filesystem::remove(path);
}

// Hooks are host-side observers, deliberately not part of the snapshot: a
// restored platform with the hook re-attached must record the exact same
// dynamic indirect-branch edge profile a continued run does, bit for bit.
TEST(Snapshot, IndirectBranchHookRecordsIdenticalEdgesAfterRestore) {
  // A jump-table dispatcher that never halts: the selector walks 0..3
  // forever, so indirect edges keep flowing after the snapshot point.
  constexpr std::string_view kDispatcher = R"(
      .secure
      .stack 128
      .entry main
  main:
      andi r1, 3
      shli r1, 2
      li   r2, table
      add  r2, r1
      ldw  r2, [r2]
      shri r1, 2
      jmpr r2
  case0:
      addi r1, 1
      jmp  main
  case1:
      addi r1, 1
      jmp  main
  case2:
      addi r1, 1
      jmp  main
  case3:
      movi r1, 0
      jmp  main
  table:
      .word case0, case1, case2, case3
  )";

  using EdgeList = std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>>;
  auto edge_hook = [](EdgeList& edges) {
    return [&edges](std::uint32_t pc, std::uint32_t target, bool is_call) {
      edges.emplace_back(pc, target, is_call);
    };
  };

  core::Platform original;
  ASSERT_TRUE(original.boot().is_ok());
  auto task =
      original.load_task_source(std::string(kDispatcher), {.name = "dispatcher"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  original.run_for(50'000);
  auto snapshot = original.save();
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();

  EdgeList continued_edges;
  original.machine().set_indirect_branch_hook(edge_hook(continued_edges));
  original.run_for(200'000);

  core::Platform restored;
  ASSERT_TRUE(restored.restore(*snapshot).is_ok());
  EdgeList restored_edges;
  restored.machine().set_indirect_branch_hook(edge_hook(restored_edges));
  restored.run_for(200'000);

  EXPECT_FALSE(continued_edges.empty());
  EXPECT_EQ(continued_edges, restored_edges);
}

}  // namespace
}  // namespace tytan
