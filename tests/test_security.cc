// Adversarial tests: malicious or faulty tasks attack the isolation
// boundaries; TyTAN must contain every attempt (paper §5).
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

constexpr std::string_view kVictim = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, secret
    ldw  r3, [r2]
loop:
    movi r0, 1
    int  0x21
    jmp  loop
secret:
    .word 0xdeadbeef
)";

/// Runs `attacker_source` alongside the victim; returns the number of tasks
/// killed by EA-MPU faults and the last fault type.
struct AttackResult {
  std::uint64_t kills;
  sim::FaultType fault;
  bool attacker_alive;
  std::string serial;
};

AttackResult run_attack(const std::string& attacker_source,
                        std::uint32_t* victim_secret_addr = nullptr) {
  Platform platform;
  EXPECT_TRUE(platform.boot().is_ok());
  auto victim = platform.load_task_source(kVictim, {.name = "victim", .priority = 2});
  EXPECT_TRUE(victim.is_ok());
  const rtos::Tcb* vt = platform.scheduler().get(*victim);
  auto probe = isa::assemble(kVictim);
  const std::uint32_t secret = vt->region_base + probe->symbols.at("secret");
  if (victim_secret_addr != nullptr) {
    *victim_secret_addr = secret;
  }
  std::string source = attacker_source;
  // Template substitution for the victim's addresses.
  auto replace_all = [&source](std::string_view what, const std::string& with) {
    std::size_t pos = 0;
    while ((pos = source.find(what, pos)) != std::string::npos) {
      source.replace(pos, what.size(), with);
      pos += with.size();
    }
  };
  replace_all("%SECRET%", std::to_string(secret));
  replace_all("%VICTIM_MID%", std::to_string(vt->entry + 12));
  replace_all("%VICTIM_STACK%", std::to_string(vt->stack_top - 64));

  auto attacker = platform.load_task_source(source, {.name = "attacker", .priority = 3});
  EXPECT_TRUE(attacker.is_ok()) << attacker.status().to_string();
  platform.run_for(5'000'000);
  return {platform.kernel().fault_kills(), platform.machine().last_fault().type,
          platform.scheduler().get(*attacker) != nullptr, platform.serial().output()};
}

TEST(Attack, ReadOtherTaskMemoryKillsAttacker) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, %SECRET%
      ldw  r3, [r2]          ; EA-MPU violation
      movi r0, 4             ; never reached: would print the secret
      mov  r1, r3
      int  0x21
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuData);
  EXPECT_FALSE(result.attacker_alive);
  EXPECT_TRUE(result.serial.empty()) << "secret leaked: " << result.serial;
}

TEST(Attack, WriteOtherTaskStackKillsAttacker) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, %VICTIM_STACK%
      movi r3, 0
      stw  r3, [r2]          ; corrupting the victim's stack
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuData);
  EXPECT_FALSE(result.attacker_alive);
}

TEST(Attack, JumpIntoVictimMidCodeBlocked) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, %VICTIM_MID%
      jmpr r2                ; code-reuse attempt: bypass the entry point
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuTransfer);
}

TEST(Attack, CallIntoTrustedFirmwareBlocked) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, 0x14000       ; Int Mux window
      callr r2
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuTransfer);
}

TEST(Attack, ReadPlatformKeyBlocked) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, 0x100600      ; platform-key register
      ldw  r3, [r2]
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuData);
}

TEST(Attack, WriteRtmRegistryBlocked) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, 0x20000       ; RTM registry (forge an identity)
      movi r3, 0
      stw  r3, [r2]
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuData);
}

TEST(Attack, RewriteIdtBlocked) {
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r2, 0x84          ; IDT entry for the syscall vector
      li   r3, 0x40000
      stw  r3, [r2]          ; install a malicious handler
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kMpuData);
}

TEST(Attack, StackPivotIntoVictimFaultsAtDispatch) {
  // Point SP into the victim's region then raise a syscall: the hardware
  // frame push runs under the *attacker's* identity and faults.
  const AttackResult result = run_attack(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r7, %VICTIM_STACK%
      movi r0, 1
      int  0x21
  h:  jmp h
  )");
  EXPECT_GE(result.kills, 1u);
  EXPECT_EQ(result.fault, sim::FaultType::kStackFault);
}

TEST(Attack, StackOverflowIntoNeighbourContained) {
  // A runaway recursion pushes past the task's own region; the first push
  // outside faults instead of silently corrupting a neighbour.
  const AttackResult result = run_attack(R"(
      .secure
      .stack 64
      .entry main
  main:
  recurse:
      push r0
      jmp  recurse
  )");
  EXPECT_GE(result.kills, 1u);
  // Either the PUSH itself faults (MPU data) or a tick's hardware frame push
  // finds SP outside the region first (stack fault) — both contain the task.
  EXPECT_TRUE(result.fault == sim::FaultType::kMpuData ||
              result.fault == sim::FaultType::kStackFault)
      << fault_name(result.fault);
}

TEST(Attack, VictimSurvivesAllAttacks) {
  // After an attacker is killed, the victim keeps running undisturbed.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto victim = platform.load_task_source(kVictim, {.name = "victim", .priority = 2});
  ASSERT_TRUE(victim.is_ok());
  auto attacker = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, 0x100600
      ldw  r3, [r2]
  h:  jmp h
  )", {.name = "attacker", .priority = 3});
  ASSERT_TRUE(attacker.is_ok());
  platform.run_for(3'000'000);
  EXPECT_EQ(platform.scheduler().get(*attacker), nullptr);
  const rtos::Tcb* vt = platform.scheduler().get(*victim);
  ASSERT_NE(vt, nullptr);
  const std::uint64_t activations = vt->activations;
  platform.run_for(1'000'000);
  EXPECT_GT(platform.scheduler().get(*victim)->activations, activations);
}

TEST(Attack, NormalTaskCannotReadSecureTask) {
  std::uint32_t secret = 0;
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto victim = platform.load_task_source(kVictim, {.name = "victim", .priority = 2});
  ASSERT_TRUE(victim.is_ok());
  auto probe = isa::assemble(kVictim);
  secret = platform.scheduler().get(*victim)->region_base + probe->symbols.at("secret");
  const std::string attacker = "    .stack 128\n    .entry main\nmain:\n    li r2, " +
                               std::to_string(secret) +
                               "\n    ldw r3, [r2]\nh:  jmp h\n";
  auto normal = platform.load_task_source(attacker, {.name = "normal", .priority = 3});
  ASSERT_TRUE(normal.is_ok());
  platform.run_for(3'000'000);
  EXPECT_EQ(platform.scheduler().get(*normal), nullptr);  // killed
  EXPECT_EQ(platform.machine().last_fault().type, sim::FaultType::kMpuData);
}

TEST(Attack, SecureTaskCanNotReconfigureEaMpu) {
  // There is no MMIO port for the EA-MPU (it is driver-mediated), but the
  // port-guard also rejects host-level writes while locked.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  EXPECT_EQ(platform.mpu()
                .write_slot(17, {.code_start = 0x40000,
                                 .code_size = 0x1000,
                                 .data_start = 0,
                                 .data_size = 0x1000,
                                 .perms = hw::kPermRead | hw::kPermWrite})
                .code(),
            Err::kPermissionDenied);
}

TEST(Attack, FaultStormDoesNotStarveTheSystem) {
  // Loading a stream of crashing tasks must never wedge the platform.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto victim = platform.load_task_source(kVictim, {.name = "victim", .priority = 2});
  ASSERT_TRUE(victim.is_ok());
  for (int i = 0; i < 8; ++i) {
    auto crasher = platform.load_task_source(R"(
        .secure
        .stack 128
        .entry main
    main:
        movi r2, 0
        ldw  r3, [r2]      ; IDT region -> fault
    h:  jmp h
    )", {.name = "crash" + std::to_string(i), .priority = 3});
    ASSERT_TRUE(crasher.is_ok());
    platform.run_for(500'000);
  }
  EXPECT_GE(platform.kernel().fault_kills(), 8u);
  EXPECT_FALSE(platform.machine().halted());
  EXPECT_NE(platform.scheduler().get(*victim), nullptr);
}

}  // namespace
}  // namespace tytan
