// Runtime task update (paper §8 future work, implemented in
// core/task_update): hitless replacement with storage migration.
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

std::string versioned_task(unsigned version) {
  // Stores its version in sealed storage, prints it every activation.
  return R"(
    .secure
    .stack 256
    .entry main
main:
    movi r0, 4
    movi r1, )" + std::to_string('0' + version) + R"(
    int  0x21
loop:
    movi r0, 2
    movi r1, 2
    int  0x21
    movi r0, 4
    movi r1, )" + std::to_string('0' + version) + R"(
    int  0x21
    jmp  loop
)";
}

TEST(Update, SynchronousSwapReplacesBinary) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 3});
  ASSERT_TRUE(v1.is_ok());
  platform.run_for(500'000);
  EXPECT_NE(platform.serial().output().find('1'), std::string::npos);

  auto v2 = platform.update_task(*v1, versioned_task(2), {.name = "svc-v2", .priority = 3});
  ASSERT_TRUE(v2.is_ok()) << v2.status().to_string();
  EXPECT_EQ(platform.scheduler().get(*v1), nullptr);  // v1 gone
  const rtos::Tcb* tcb = platform.scheduler().get(*v2);
  ASSERT_NE(tcb, nullptr);
  EXPECT_TRUE(tcb->measured);
  EXPECT_EQ(tcb->priority, 3u);  // inherits the slot's priority

  platform.serial().clear();
  platform.run_for(1'000'000);
  EXPECT_NE(platform.serial().output().find('2'), std::string::npos);
  EXPECT_EQ(platform.serial().output().find('1'), std::string::npos);
}

TEST(Update, IdentityChangesAcrossUpdate) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 3,
                                                          .auto_start = false});
  ASSERT_TRUE(v1.is_ok());
  const rtos::TaskIdentity id1 = platform.scheduler().get(*v1)->identity;
  auto v2 = platform.update_task(*v1, versioned_task(2), {.name = "svc2", .priority = 3});
  ASSERT_TRUE(v2.is_ok());
  EXPECT_NE(platform.scheduler().get(*v2)->identity, id1);
}

TEST(Update, StorageMigratesWithUpdate) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 3,
                                                          .auto_start = false});
  ASSERT_TRUE(v1.is_ok());
  const rtos::TaskIdentity id1 = platform.scheduler().get(*v1)->identity;
  const ByteVec state = {0xCA, 0xFE};
  ASSERT_TRUE(platform.secure_storage().store(id1, 7, state).is_ok());

  auto v2 = platform.update_task(*v1, versioned_task(2), {.name = "svc2", .priority = 3},
                                 {.migrate_storage = true});
  ASSERT_TRUE(v2.is_ok());
  const rtos::TaskIdentity id2 = platform.scheduler().get(*v2)->identity;
  auto migrated = platform.secure_storage().load(id2, 7);
  ASSERT_TRUE(migrated.is_ok()) << migrated.status().to_string();
  EXPECT_EQ(*migrated, state);
  // The old identity's blob is retired.
  EXPECT_FALSE(platform.secure_storage().load(id1, 7).is_ok());
}

TEST(Update, WithoutMigrationOldStateUnreachable) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 3,
                                                          .auto_start = false});
  ASSERT_TRUE(v1.is_ok());
  const rtos::TaskIdentity id1 = platform.scheduler().get(*v1)->identity;
  ASSERT_TRUE(platform.secure_storage().store(id1, 7, ByteVec{1}).is_ok());
  auto v2 = platform.update_task(*v1, versioned_task(2), {.name = "svc2", .priority = 3},
                                 {.migrate_storage = false});
  ASSERT_TRUE(v2.is_ok());
  EXPECT_FALSE(
      platform.secure_storage().load(platform.scheduler().get(*v2)->identity, 7).is_ok());
}

TEST(Update, AsyncUpdateKeepsOldVersionRunningDuringLoad) {
  Platform::Config config;
  config.tick_period = 32'000;
  Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 5});
  ASSERT_TRUE(v1.is_ok());
  platform.run_for(200'000);

  // Large v2 so the load spans many periods.
  std::string v2_src = versioned_task(2) + "    .space 8000\n";
  auto object = isa::assemble(v2_src);
  ASSERT_TRUE(object.is_ok());
  auto v2 = platform.update_task_async(*v1, object.take(), {.name = "svc2", .priority = 5});
  ASSERT_TRUE(v2.is_ok()) << v2.status().to_string();
  EXPECT_TRUE(platform.updater().update_in_progress());

  // While loading, v1 still prints.
  const std::size_t before = platform.serial().output().size();
  platform.run_for(10 * 32'000);
  EXPECT_GT(platform.serial().output().size(), before);
  EXPECT_NE(platform.scheduler().get(*v1), nullptr);

  ASSERT_TRUE(platform.run_until([&] { return !platform.updater().update_in_progress(); },
                                 50'000'000));
  EXPECT_TRUE(platform.updater().last_swap_status().is_ok())
      << platform.updater().last_swap_status().to_string();
  // The hitless property quantified: the swap itself costs far less than the
  // load (downtime is the swap, not the ~0.5M-cycle load).
  EXPECT_GT(platform.updater().last_swap_cycles(), 0u);
  EXPECT_LT(platform.updater().last_swap_cycles(), 50'000u);
  EXPECT_EQ(platform.scheduler().get(*v1), nullptr);
  ASSERT_NE(platform.scheduler().get(*v2), nullptr);

  platform.serial().clear();
  platform.run_for(2'000'000);
  EXPECT_NE(platform.serial().output().find('2'), std::string::npos);
}

TEST(Update, PendingMailboxCarriedOver) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  constexpr std::string_view kReceiver = R"(
      .secure
      .stack 256
      .entry main
      .msg on_msg
  main:
      movi r0, 8
      int  0x21
  h:  jmp h
  on_msg:
      li   r5, __tytan_mailbox
      ldw  r1, [r5+8]
      movi r0, 4
      int  0x21
      movi r0, 9
      int  0x21
  h2: jmp h2
  )";
  auto v1 = platform.load_task_source(kReceiver, {.name = "recv", .priority = 3});
  ASSERT_TRUE(v1.is_ok());
  platform.run_for(300'000);  // park in wait-msg

  // Deliver a message but don't let the receiver run; then update.
  const rtos::Tcb* r = platform.scheduler().get(*v1);
  ASSERT_TRUE(platform.suspend_task(*v1).is_ok());
  ASSERT_TRUE(platform.ipc_proxy()
                  .deliver(rtos::TaskIdentity{}, r->identity, {'Q', 0, 0, 0}, false)
                  .is_ok());
  std::string v2_src(kReceiver);
  v2_src += "\n    .word 42\n";  // different binary
  auto v2 = platform.update_task(*v1, v2_src, {.name = "recv2", .priority = 3});
  ASSERT_TRUE(v2.is_ok()) << v2.status().to_string();

  // The new instance delivers the carried-over message.
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 20'000'000));
  EXPECT_EQ(platform.serial().output(), "Q");
}

TEST(Update, ErrorsReported) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  // Unknown old handle.
  EXPECT_FALSE(platform.update_task(1234, versioned_task(1), {.name = "x"}).is_ok());
  // Secure -> normal kind change rejected.
  auto v1 = platform.load_task_source(versioned_task(1), {.name = "svc", .priority = 3,
                                                          .auto_start = false});
  ASSERT_TRUE(v1.is_ok());
  std::string normal = versioned_task(2);
  normal.erase(normal.find("    .secure\n"), 12);
  EXPECT_FALSE(platform.update_task(*v1, normal, {.name = "svc2"}).is_ok());
  // The failed update leaves the old version intact.
  EXPECT_NE(platform.scheduler().get(*v1), nullptr);
}

}  // namespace
}  // namespace tytan
