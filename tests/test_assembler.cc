#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/isa.h"

namespace tytan::isa {
namespace {

ObjectFile must_assemble(std::string_view source) {
  auto object = assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  return object.take();
}

TEST(Assembler, BasicInstructions) {
  const ObjectFile obj = must_assemble(R"(
      movi r0, 1
      addi r0, 2
      mov  r1, r0
      hlt
  )");
  ASSERT_EQ(obj.image.size(), 16u);
  EXPECT_EQ(disassemble_word(load_le32(obj.image.data()), 0), "movi r0, 1");
  EXPECT_EQ(disassemble_word(load_le32(obj.image.data() + 12), 12), "hlt");
}

TEST(Assembler, LabelsAndBranches) {
  const ObjectFile obj = must_assemble(R"(
  loop:
      subi r0, 1
      jnz  loop
      hlt
  )");
  // jnz at offset 4, target 0: disp = 0 - 8 = -8.
  const auto instr = decode(load_le32(obj.image.data() + 4));
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(instr->opcode, Opcode::kJnz);
  EXPECT_EQ(instr->simm(), -8);
}

TEST(Assembler, ForwardReferences) {
  const ObjectFile obj = must_assemble(R"(
      jmp end
      nop
  end:
      hlt
  )");
  const auto instr = decode(load_le32(obj.image.data()));
  EXPECT_EQ(instr->simm(), 4);  // skip the nop
}

TEST(Assembler, LiEmitsRelocationsForSymbols) {
  const ObjectFile obj = must_assemble(R"(
      li r2, buffer
      hlt
  buffer:
      .word 0
  )");
  ASSERT_EQ(obj.relocs.size(), 2u);
  EXPECT_EQ(obj.relocs[0].kind, RelocKind::kLo16);
  EXPECT_EQ(obj.relocs[0].offset, 0u);
  EXPECT_EQ(obj.relocs[1].kind, RelocKind::kHi16);
  EXPECT_EQ(obj.relocs[1].offset, 4u);
  EXPECT_EQ(obj.relocs[0].addend, 12u);  // buffer is after li (8) + hlt (4)
}

TEST(Assembler, LiWithConstantEmitsNoRelocations) {
  const ObjectFile obj = must_assemble("li r1, 0x12345678\n");
  EXPECT_TRUE(obj.relocs.empty());
  ASSERT_EQ(obj.image.size(), 8u);
  const auto lo = decode(load_le32(obj.image.data()));
  const auto hi = decode(load_le32(obj.image.data() + 4));
  EXPECT_EQ(lo->imm, 0x5678);
  EXPECT_EQ(hi->imm, 0x1234);
}

TEST(Assembler, WordDirectiveWithLabelEmitsAbs32) {
  const ObjectFile obj = must_assemble(R"(
  start:
      hlt
  table:
      .word start, 42, table
  )");
  ASSERT_EQ(obj.relocs.size(), 2u);
  EXPECT_EQ(obj.relocs[0].kind, RelocKind::kAbs32);
  EXPECT_EQ(obj.relocs[0].offset, 4u);
  EXPECT_EQ(obj.relocs[0].addend, 0u);   // start
  EXPECT_EQ(obj.relocs[1].offset, 12u);
  EXPECT_EQ(obj.relocs[1].addend, 4u);   // table
  EXPECT_EQ(load_le32(obj.image.data() + 8), 42u);
}

TEST(Assembler, DataDirectives) {
  const ObjectFile obj = must_assemble(R"(
      .byte 1, 2, 255
      .align 4
      .ascii "hi\n"
      .space 3
  )");
  // 4 (.byte + align) + 3 (.ascii) + 3 (.space), padded to a whole word.
  ASSERT_EQ(obj.image.size(), 12u);
  EXPECT_EQ(obj.image[0], 1);
  EXPECT_EQ(obj.image[2], 255);
  EXPECT_EQ(obj.image[3], 0);  // align padding
  EXPECT_EQ(obj.image[4], 'h');
  EXPECT_EQ(obj.image[6], '\n');
}

TEST(Assembler, EquConstants) {
  const ObjectFile obj = must_assemble(R"(
      .equ SENSOR, 0x1234
      movi r0, SENSOR
  )");
  const auto instr = decode(load_le32(obj.image.data()));
  EXPECT_EQ(instr->imm, 0x1234);
}

TEST(Assembler, StackBssEntryDirectives) {
  const ObjectFile obj = must_assemble(R"(
      .stack 512
      .bss 64
      .entry main
      nop
  main:
      hlt
  )");
  EXPECT_EQ(obj.stack_size, 512u);
  EXPECT_EQ(obj.bss_size, 64u);
  EXPECT_EQ(obj.entry, 4u);
  EXPECT_EQ(obj.memory_size(), 8u + 64u + 512u);
}

TEST(Assembler, MemoryOperands) {
  const ObjectFile obj = must_assemble(R"(
      ldw r1, [r2]
      ldw r1, [r2+8]
      stw r1, [sp-4]
  )");
  const auto a = decode(load_le32(obj.image.data()));
  const auto b = decode(load_le32(obj.image.data() + 4));
  const auto c = decode(load_le32(obj.image.data() + 8));
  EXPECT_EQ(a->simm(), 0);
  EXPECT_EQ(b->simm(), 8);
  EXPECT_EQ(c->simm(), -4);
  EXPECT_EQ(c->ra, kSpIndex);
}

TEST(Assembler, SecurePrologueInjected) {
  const ObjectFile obj = must_assemble(R"(
      .secure
      .entry main
      .msg on_msg
  main:
      hlt
  on_msg:
      movi r0, 9
      int 0x21
  )");
  EXPECT_TRUE(obj.secure());
  EXPECT_EQ(obj.entry, 0u);  // prologue at the front
  EXPECT_NE(obj.mailbox, 0u);
  EXPECT_NE(obj.msg_handler, 0u);
  EXPECT_EQ(obj.symbols.at("__tytan_entry"), 0u);
  // Prologue: 5 instrs + 8 restore instrs + 1 jmp + mailbox 24 bytes.
  EXPECT_EQ(obj.mailbox, obj.symbols.at("__tytan_mailbox"));
  EXPECT_EQ(obj.symbols.at("main"), obj.mailbox + isa::SecureLayout::kMailboxSize);
}

TEST(Assembler, SecureDefaultEntryWhenNoneGiven) {
  const ObjectFile obj = must_assemble(R"(
      .secure
      hlt
  )");
  EXPECT_TRUE(obj.secure());
  EXPECT_TRUE(obj.symbols.contains("__tytan_user_start"));
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto r1 = assemble("bogus r0, r1\n");
  ASSERT_FALSE(r1.is_ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);

  auto r2 = assemble("nop\nmovi r9, 1\n");
  ASSERT_FALSE(r2.is_ok());
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);
}

TEST(Assembler, ErrorOnUndefinedSymbol) {
  EXPECT_FALSE(assemble("jmp nowhere\n").is_ok());
}

TEST(Assembler, ErrorOnDuplicateLabel) {
  EXPECT_FALSE(assemble("a:\na:\n  nop\n").is_ok());
}

TEST(Assembler, ErrorOnImmediateOutOfRange) {
  EXPECT_FALSE(assemble("movi r0, 70000\n").is_ok());
  EXPECT_FALSE(assemble("movi r0, -40000\n").is_ok());
}

TEST(Assembler, CommentsAndBlankLines) {
  const ObjectFile obj = must_assemble(R"(
      ; full-line comment
      # hash comment
      nop      ; trailing
      hlt      # trailing
  )");
  EXPECT_EQ(obj.image.size(), 8u);
}


TEST(Assembler, SymbolPlusOffsetExpressions) {
  const ObjectFile obj = must_assemble(R"(
      li   r1, table+8
      ldw  r2, [r1]
      hlt
  table:
      .word 10, 20, 30
      .word table+4
  )");
  // li reloc addend = table offset + 8.
  ASSERT_GE(obj.relocs.size(), 3u);
  const std::uint32_t table_off = obj.symbols.at("table");
  EXPECT_EQ(obj.relocs[0].kind, RelocKind::kLo16);
  EXPECT_EQ(obj.relocs[0].addend, table_off + 8);
  // .word table+4 -> ABS32 with addend table+4.
  EXPECT_EQ(obj.relocs.back().kind, RelocKind::kAbs32);
  EXPECT_EQ(obj.relocs.back().addend, table_off + 4);
  EXPECT_EQ(load_le32(obj.image.data() + table_off + 12), table_off + 4);
}

TEST(Assembler, SymbolMinusOffsetExpressions) {
  const ObjectFile obj = must_assemble(R"(
  start:
      nop
  end:
      .word end-4
  )");
  EXPECT_EQ(obj.relocs.back().addend, 0u);  // end(4) - 4
}

TEST(Assembler, BranchToSymbolPlusOffset) {
  const ObjectFile obj = must_assemble(R"(
      jmp  code+4
  code:
      nop
      hlt
  )");
  const auto instr = decode(load_le32(obj.image.data()));
  // target = code(4) + 4 = 8; disp = 8 - 4 = 4.
  EXPECT_EQ(instr->simm(), 4);
}

TEST(Assembler, NotPseudoComplementsRegister) {
  const ObjectFile obj = must_assemble(R"(
      not r3
      hlt
  )");
  ASSERT_EQ(obj.image.size(), 12u);  // 2-instruction expansion + hlt
  const auto first = decode(load_le32(obj.image.data()));
  const auto second = decode(load_le32(obj.image.data() + 4));
  EXPECT_EQ(first->opcode, Opcode::kMovi);
  EXPECT_EQ(first->rd, 0);
  EXPECT_EQ(first->simm(), -1);
  EXPECT_EQ(second->opcode, Opcode::kXor);
  EXPECT_EQ(second->rd, 3);
}

TEST(Assembler, NotRejectsScratchRegister) {
  EXPECT_FALSE(assemble("not r0\n").is_ok());
}

}  // namespace
}  // namespace tytan::isa
