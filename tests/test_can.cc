// CAN bus device and IRQ-driven task wake-up (paper §4: tasks are
// interrupted "to react to an event like an arriving network package").
#include <gtest/gtest.h>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;
using sim::CanBusDevice;

TEST(CanDevice, RxFifoSemantics) {
  CanBusDevice can;
  int irqs = 0;
  can.set_irq_sink([&](std::uint8_t v) {
    EXPECT_EQ(v, sim::kVecCan);
    ++irqs;
  });
  CanBusDevice::Frame frame{.id = 0x123, .dlc = 4, .data = {1, 2, 3, 4, 0, 0, 0, 0}};
  EXPECT_TRUE(can.inject(frame));
  EXPECT_EQ(irqs, 1);
  EXPECT_EQ(can.read32(CanBusDevice::kStatus), 1u);
  EXPECT_EQ(can.read32(CanBusDevice::kRxId), 0x123u | (4u << 16));
  EXPECT_EQ(can.read32(CanBusDevice::kRxData0), 0x04030201u);
  can.write32(CanBusDevice::kRxPop, 1);
  EXPECT_EQ(can.read32(CanBusDevice::kStatus), 0u);
}

TEST(CanDevice, FifoOverflowDropsAndCounts) {
  CanBusDevice can;
  for (std::size_t i = 0; i < CanBusDevice::kRxFifoDepth; ++i) {
    EXPECT_TRUE(can.inject({.id = static_cast<std::uint16_t>(i), .dlc = 0, .data = {}}));
  }
  EXPECT_FALSE(can.inject({.id = 0x7FF, .dlc = 0, .data = {}}));
  EXPECT_EQ(can.rx_overflows(), 1u);
  EXPECT_EQ(can.read32(CanBusDevice::kStatus), CanBusDevice::kRxFifoDepth);
}

TEST(CanDevice, TxPath) {
  CanBusDevice can;
  can.write32(CanBusDevice::kTxId, 0x456u | (8u << 16));
  can.write32(CanBusDevice::kTxData0, 0xAABBCCDDu);
  can.write32(CanBusDevice::kTxData1, 0x11223344u);
  can.write32(CanBusDevice::kTxSend, 1);
  ASSERT_EQ(can.transmitted().size(), 1u);
  EXPECT_EQ(can.transmitted()[0].id, 0x456u);
  EXPECT_EQ(can.transmitted()[0].data[0], 0xDD);
  EXPECT_EQ(can.transmitted()[0].data[7], 0x11);
}

/// Guest driver: parks on the CAN IRQ; on wake, reads the head frame,
/// echoes data byte 0 to serial, acknowledges over CAN TX, pops, re-parks.
constexpr std::string_view kCanDriver = R"(
    .secure
    .stack 256
    .entry main
    .equ CAN, 0x100700
main:
loop:
    movi r0, 16           ; kSysWaitIrq
    movi r1, 0x23         ; kVecCan
    int  0x21
drain:
    li   r2, CAN
    ldw  r3, [r2]         ; STATUS
    cmpi r3, 0
    jz   loop
    ldw  r4, [r2+8]       ; RX_DATA0
    mov  r1, r4
    andi r1, 0xFF
    movi r0, 4            ; putchar(data[0])
    int  0x21
    li   r2, CAN
    ldw  r4, [r2+4]       ; RX_ID
    addi r4, 1            ; ack id = rx id + 1
    stw  r4, [r2+20]      ; TX_ID
    movi r5, 0x6B         ; 'k'
    stw  r5, [r2+24]      ; TX_DATA0
    stw  r5, [r2+32]      ; TX_SEND
    movi r5, 1
    stw  r5, [r2+16]      ; RX_POP
    jmp  drain
)";

TEST(CanIrq, DriverTaskWakesOnFrameAndAcks) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto driver = platform.load_task_source(kCanDriver, {.name = "can-drv", .priority = 4});
  ASSERT_TRUE(driver.is_ok()) << driver.status().to_string();
  platform.run_for(300'000);  // driver parks on the IRQ

  platform.can_bus().inject({.id = 0x100, .dlc = 1, .data = {'A', 0, 0, 0, 0, 0, 0, 0}});
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 5'000'000));
  EXPECT_EQ(platform.serial().output(), "A");
  ASSERT_TRUE(platform.run_until(
      [&] { return !platform.can_bus().transmitted().empty(); }, 5'000'000));
  EXPECT_EQ(platform.can_bus().transmitted()[0].id, 0x101u);
  EXPECT_EQ(platform.can_bus().transmitted()[0].data[0], 'k');

  // A second frame wakes it again (edge-triggered rebinding works).
  platform.can_bus().inject({.id = 0x200, .dlc = 1, .data = {'B', 0, 0, 0, 0, 0, 0, 0}});
  ASSERT_TRUE(
      platform.run_until([&] { return platform.serial().output() == "AB"; }, 5'000'000));
}

TEST(CanIrq, BurstOfFramesAllProcessed) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto driver = platform.load_task_source(kCanDriver, {.name = "can-drv", .priority = 4});
  ASSERT_TRUE(driver.is_ok());
  platform.run_for(300'000);

  for (char c = 'a'; c <= 'f'; ++c) {
    platform.can_bus().inject(
        {.id = 0x10, .dlc = 1,
         .data = {static_cast<std::uint8_t>(c), 0, 0, 0, 0, 0, 0, 0}});
  }
  ASSERT_TRUE(platform.run_until([&] { return platform.serial().output().size() == 6; },
                                 20'000'000))
      << "got: " << platform.serial().output();
  EXPECT_EQ(platform.serial().output(), "abcdef");
  platform.run_for(500'000);  // the final ack transmits after the echo
  EXPECT_EQ(platform.can_bus().transmitted().size(), 6u);
}

TEST(CanIrq, WaitIrqOnUnroutedVectorRejected) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  constexpr std::string_view kBadWaiter = R"(
      .secure
      .stack 128
      .entry main
  main:
      movi r0, 16
      movi r1, 0x21        ; the syscall vector is not waitable
      int  0x21
      cmpi r0, -1
      jnz  nope
      movi r1, 89          ; 'Y': correctly rejected
      movi r0, 4
      int  0x21
  nope:
      movi r0, 3
      int  0x21
  )";
  auto task = platform.load_task_source(kBadWaiter, {.name = "bad", .priority = 3});
  ASSERT_TRUE(task.is_ok());
  platform.run_until([&] { return !platform.serial().output().empty(); }, 5'000'000);
  EXPECT_EQ(platform.serial().output(), "Y");
}

TEST(CanIrq, WakeRespectsPriorities) {
  // A CAN frame arriving while a higher-priority task runs does not let the
  // driver jump the queue; while a *lower*-priority task runs, it does.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto driver = platform.load_task_source(kCanDriver, {.name = "can-drv", .priority = 3});
  ASSERT_TRUE(driver.is_ok());
  auto spinner = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      jmp main
  )", {.name = "low-spin", .priority = 1});
  ASSERT_TRUE(spinner.is_ok());
  platform.run_for(300'000);
  platform.can_bus().inject({.id = 1, .dlc = 1, .data = {'x', 0, 0, 0, 0, 0, 0, 0}});
  // Driver (prio 3) preempts the spinner (prio 1) promptly.
  const std::uint64_t before = platform.machine().cycles();
  ASSERT_TRUE(
      platform.run_until([&] { return !platform.serial().output().empty(); }, 5'000'000));
  EXPECT_LT(platform.machine().cycles() - before, 100'000u);
}

}  // namespace
}  // namespace tytan
