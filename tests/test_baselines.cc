// Baseline architecture models (paper §7): their defining constraints hold
// and differ from TyTAN's behaviour on the same substrate.
#include <gtest/gtest.h>

#include "baselines/baselines.h"

namespace tytan {
namespace {

using baselines::TrustLitePlatform;
using core::Platform;

constexpr std::string_view kTask = R"(
    .secure
    .stack 128
    .entry main
main:
    movi r0, 1
    int  0x21
    jmp  main
)";

TEST(TrustLite, PreloadedTasksRunAfterBoot) {
  TrustLitePlatform trustlite;
  auto object = isa::assemble(kTask);
  ASSERT_TRUE(object.is_ok());
  ASSERT_TRUE(trustlite.preload(*object, {.name = "a", .priority = 3}).is_ok());
  ASSERT_TRUE(trustlite.preload(*object, {.name = "b", .priority = 3}).is_ok());
  auto handles = trustlite.boot();
  ASSERT_TRUE(handles.is_ok()) << handles.status().to_string();
  ASSERT_EQ(handles->size(), 2u);
  trustlite.platform().run_for(2'000'000);
  for (const auto handle : *handles) {
    EXPECT_GT(trustlite.platform().scheduler().get(handle)->activations, 5u);
  }
}

TEST(TrustLite, RejectsPostBootLoading) {
  TrustLitePlatform trustlite;
  auto object = isa::assemble(kTask);
  ASSERT_TRUE(object.is_ok());
  ASSERT_TRUE(trustlite.boot().is_ok());
  EXPECT_TRUE(trustlite.sealed());
  EXPECT_EQ(trustlite.load_task(*object, {.name = "late"}).status().code(),
            Err::kPermissionDenied);
  EXPECT_EQ(trustlite.preload(*object, {.name = "late"}).code(), Err::kPermissionDenied);
}

TEST(Smart, AtomicAttestCostsTheWholeMeasurement) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::string source(kTask);
  source += "    .space 4000\n";
  auto task = platform.load_task_source(source, {.name = "payload", .auto_start = false});
  ASSERT_TRUE(task.is_ok());
  const std::uint64_t ticks_before = platform.kernel().tick_count();
  const std::uint64_t cycles = baselines::smart_atomic_attest(platform, *task);
  // ~64 hash blocks * 3,900 cycles — far more than a tick period — and NO
  // tick was serviced meanwhile (the defining SMART limitation).
  EXPECT_GT(cycles, 200'000u);
  EXPECT_EQ(platform.kernel().tick_count(), ticks_before);
  // The timer catches up only once the machine runs again — several periods
  // elapsed unserviced during the atomic routine.
  const std::uint64_t fired_before = platform.timer().ticks_fired();
  platform.run_for(platform.config().tick_period);
  EXPECT_GE(platform.timer().ticks_fired() - fired_before,
            cycles / platform.config().tick_period);
}

TEST(Spm, RejectsRelocatableModules) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(R"(
      .secure
      .entry main
  main:
      li r1, data       ; relocation!
      jmp main
  data:
      .word 0
  )");
  ASSERT_TRUE(object.is_ok());
  ASSERT_FALSE(object->relocs.empty());
  EXPECT_EQ(baselines::spm_load_fixed(platform, object.take(), 0x40000, {.name = "m"})
                .status()
                .code(),
            Err::kInvalidArgument);
}

TEST(Spm, LoadsOnlyAtTheLinkedBase) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  // Find where the next allocation would land; that is the "linked base".
  auto probe = platform.loader().arena().alloc(512);
  ASSERT_TRUE(probe.is_ok());
  const std::uint32_t linked_base = *probe;
  ASSERT_TRUE(platform.loader().arena().free(linked_base).is_ok());

  isa::ObjectFile module;
  module.image.assign(64, 0);
  module.stack_size = 128;
  auto loaded = baselines::spm_load_fixed(platform, module, linked_base,
                                          {.name = "spm", .auto_start = false});
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(platform.scheduler().get(*loaded)->region_base, linked_base);

  // A second instance of the same module cannot load: its base is taken.
  auto second = baselines::spm_load_fixed(platform, module, linked_base,
                                          {.name = "spm2", .auto_start = false});
  EXPECT_FALSE(second.is_ok());
  // TyTAN, on the same platform, just relocates it elsewhere.
  auto relocated = platform.load_task(module, {.name = "tytan", .auto_start = false});
  EXPECT_TRUE(relocated.is_ok());
  EXPECT_NE(platform.scheduler().get(*relocated)->region_base, linked_base);
}

}  // namespace
}  // namespace tytan
