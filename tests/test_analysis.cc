// Static binary verifier (src/analysis): rule-by-rule unit coverage, clean
// passes over realistic task idioms, and the loader's lint gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/analyzer.h"
#include "core/platform.h"
#include "isa/assembler.h"
#include "isa/stdlib.h"
#include "sim/machine.h"
#include "sim/memory_map.h"
#include "tbf/tbf.h"

namespace tytan {
namespace {

using analysis::Config;
using analysis::Report;
using analysis::Rule;
using analysis::Severity;

isa::ObjectFile assemble(std::string_view source) {
  auto object = isa::assemble(source);
  EXPECT_TRUE(object.is_ok()) << object.status().to_string();
  return object.take();
}

/// Encode one raw instruction word the hard way.
std::uint32_t word(std::uint8_t opcode, std::uint8_t rd = 0, std::uint8_t ra = 0,
                   std::uint16_t imm = 0) {
  return (static_cast<std::uint32_t>(opcode) << 24) |
         (static_cast<std::uint32_t>(rd) << 20) |
         (static_cast<std::uint32_t>(ra) << 16) | imm;
}

isa::ObjectFile object_with_words(std::initializer_list<std::uint32_t> words) {
  isa::ObjectFile object;
  for (const std::uint32_t w : words) {
    append_le32(object.image, w);
  }
  return object;
}

// ---------------------------------------------------------------------------
// Rule catalogue plumbing
// ---------------------------------------------------------------------------

TEST(Findings, RuleIdsRoundTrip) {
  for (int i = 0; i <= static_cast<int>(analysis::kLastRule); ++i) {
    const auto rule = static_cast<Rule>(i);
    const auto parsed = analysis::rule_from_id(analysis::rule_id(rule));
    ASSERT_TRUE(parsed.has_value()) << analysis::rule_id(rule);
    EXPECT_EQ(*parsed, rule);
  }
  EXPECT_EQ(analysis::rule_from_id("cf002"), Rule::kCfTarget);  // case-insensitive
  EXPECT_FALSE(analysis::rule_from_id("XX999").has_value());
}

TEST(Findings, StableIdsForGoldenRules) {
  EXPECT_EQ(analysis::rule_id(Rule::kCfTarget), "CF002");
  EXPECT_EQ(analysis::rule_id(Rule::kRlPairing), "RL001");
  EXPECT_EQ(analysis::rule_id(Rule::kStDepth), "ST001");
  EXPECT_EQ(analysis::rule_id(Rule::kMmDevice), "MM001");
}

// ---------------------------------------------------------------------------
// Control-flow recovery (CF*)
// ---------------------------------------------------------------------------

TEST(Analyzer, CleanMinimalTask) {
  const auto object = assemble(R"(
      .entry start
  start:
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Analyzer, EntryOutsideImage) {
  auto object = object_with_words({word(0x42)});  // hlt
  object.entry = 64;
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kCfEntry)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kCfEntry)->severity, Severity::kError);
}

TEST(Analyzer, BranchTargetOutsideImage) {
  // jmp +0x60 from a 16-byte image.
  auto object = object_with_words(
      {word(0x30, 0, 0, 0x60), word(0x00), word(0x00), word(0x42)});
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kCfTarget)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kCfTarget)->offset, 0u);
}

TEST(Analyzer, ReachableUndecodableWord) {
  auto object = object_with_words({word(0x00), 0xFF00'0000u});
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kCfUndecodable)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kCfUndecodable)->offset, 4u);
}

TEST(Analyzer, ExecutionFallsOffImage) {
  const auto object = object_with_words({word(0x00), word(0x00)});  // nop nop
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kCfFallOff)) << report.to_string();
}

TEST(Analyzer, ExecutionReachesRelocatedData) {
  const auto object = assemble(R"(
      .entry start
  start:
      jmp table
  table:
      .word start
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kCfDataExec)) << report.to_string();
}

TEST(Analyzer, IndirectControlFlowIsAWarningNotAnError) {
  const auto object = assemble(R"(
      .entry start
  start:
      movi r1, 0
      jmpr r1
  )");
  // With the dataflow pass (the default), the blanket CF006 is replaced by
  // the precise DF002 verdict: an absolute-constant target in a relocatable
  // image cannot be certified.  Still a warning, never an error.
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kCfIndirect)) << report.to_string();
  ASSERT_TRUE(report.has(Rule::kDfUnresolved)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kDfUnresolved)->severity, Severity::kWarning);
  EXPECT_EQ(report.errors(), 0u);

  // With dataflow disabled, the structural pass keeps its original claim.
  Config no_dataflow;
  no_dataflow.dataflow = false;
  const Report seed = analysis::analyze(object, no_dataflow);
  ASSERT_TRUE(seed.has(Rule::kCfIndirect)) << seed.to_string();
  EXPECT_EQ(seed.find(Rule::kCfIndirect)->severity, Severity::kWarning);
  EXPECT_FALSE(seed.has(Rule::kDfUnresolved));
  EXPECT_EQ(seed.errors(), 0u);
}

TEST(Analyzer, UnreachableGarbageIsNotFlagged) {
  // String tables and padding after a terminal exit are normal.
  const auto object = assemble(R"(
      .entry start
  start:
      movi r0, 3
      int 0x21
      .ascii "not code at all\0"
      .byte 0xFF, 0xFF, 0xFF, 0xFF
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Relocation lints (RL*)
// ---------------------------------------------------------------------------

TEST(Analyzer, MissingHi16Pairing) {
  auto object = assemble(R"(
      .entry start
  start:
      li r2, start
      movi r0, 3
      int 0x21
  )");
  // Drop the HI16 half of the li's relocation pair.
  std::erase_if(object.relocs, [](const isa::Relocation& r) {
    return r.kind == isa::RelocKind::kHi16;
  });
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kRlPairing)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kRlPairing)->severity, Severity::kError);
}

TEST(Analyzer, RelocationOnWrongInstruction) {
  auto object = assemble(R"(
      .entry start
  start:
      li r2, start
      nop
      nop
      movi r0, 3
      int 0x21
  )");
  // Point both halves of the pair at the nops.
  for (isa::Relocation& reloc : object.relocs) {
    reloc.offset += 8;
  }
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kRlSite)) << report.to_string();
}

TEST(Analyzer, OverlappingRelocations) {
  auto object = assemble(R"(
      .entry start
  start:
      movi r0, 3
      int 0x21
  data:
      .word start
      .word start
  )");
  ASSERT_EQ(object.relocs.size(), 2u);
  isa::Relocation dup = object.relocs[0];
  dup.offset += 2;  // straddles the first record's patch bytes
  object.relocs.push_back(dup);
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kRlOverlap)) << report.to_string();
}

TEST(Analyzer, RelocationOutOfRange) {
  auto object = object_with_words({word(0x42)});
  object.relocs.push_back({.offset = 100, .kind = isa::RelocKind::kAbs32, .addend = 0});
  object.relocs.push_back(
      {.offset = 0, .kind = isa::RelocKind::kAbs32, .addend = 0xFFFF'0000u});
  const Report report = analysis::analyze(object);
  // Both the out-of-image offset and the absurd addend are RL004.
  EXPECT_GE(report.findings.size(), 2u);
  EXPECT_TRUE(report.has(Rule::kRlRange)) << report.to_string();
}

// ---------------------------------------------------------------------------
// Stack-depth analysis (ST*)
// ---------------------------------------------------------------------------

TEST(Analyzer, StackDepthOverflowByConstruction) {
  const auto object = assemble(R"(
      .stack 64
      .entry start
  start:
      push r1
      push r2
      push r3
      push r4
      push r5
      push r6
      push r1
      push r2
      push r3
      push r4
      push r5
      push r6
      push r1
      push r2
      push r3
      push r4
      push r5
      push r6
      push r1
      push r2
      movi r0, 3
      int 0x21
  )");
  // 20 pushes = 80 bytes + 36-byte interrupt reserve > 64.
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kStDepth)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kStDepth)->severity, Severity::kError);
}

TEST(Analyzer, BalancedCallChainWithinBudget) {
  const auto object = assemble(R"(
      .stack 256
      .entry start
  start:
      call helper
      movi r0, 3
      int 0x21
  helper:
      push r1
      push r2
      pop r2
      pop r1
      ret
  )");
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kStDepth)) << report.to_string();
}

TEST(Analyzer, RecursionIsReported) {
  const auto object = assemble(R"(
      .stack 256
      .entry start
  start:
      call start
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kStRecursion)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kStRecursion)->severity, Severity::kWarning);
}

TEST(Analyzer, UnboundedPushLoopIsReported) {
  const auto object = assemble(R"(
      .stack 256
      .entry start
  start:
      push r1
      jmp start
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kStLoopGrowth)) << report.to_string();
}

TEST(Analyzer, SpAdjustmentsAreTracked) {
  const auto object = assemble(R"(
      .stack 64
      .entry start
  start:
      subi sp, 48
      addi sp, 48
      movi r0, 3
      int 0x21
  )");
  // 48 + 36 > 64: the subi alone busts the budget.
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kStDepth)) << report.to_string();
}

// ---------------------------------------------------------------------------
// MMIO / privilege lints (MM*)
// ---------------------------------------------------------------------------

TEST(Analyzer, DeviceMmioFromUnprivilegedTask) {
  const auto object = assemble(R"(
      .entry start
  start:
      li r2, 0x100400
      movi r3, 9
      stw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kMmDevice)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kMmDevice)->severity, Severity::kError);
}

TEST(Analyzer, DeviceMmioFromSecureTaskIsAllowed) {
  const auto object = assemble(R"(
      .secure
      .entry start
  start:
      li r2, 0x100400
      movi r3, 9
      stw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kMmDevice)) << report.to_string();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Analyzer, KeyRegisterAccessIsFlaggedEvenForSecureTasks) {
  const auto object = assemble(R"(
      .secure
      .entry start
  start:
      li r2, 0x100600
      ldw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kMmKeyRegister)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kMmKeyRegister)->severity, Severity::kError);
}

TEST(Analyzer, TrustedRegionStoreAndLoad) {
  const auto store = assemble(R"(
      .entry start
  start:
      movi r2, 0x400
      movi r3, 1
      stw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const auto load = assemble(R"(
      .entry start
  start:
      movi r2, 0x400
      ldw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report store_report = analysis::analyze(store);
  const Report load_report = analysis::analyze(load);
  ASSERT_TRUE(store_report.has(Rule::kMmTrusted));
  EXPECT_EQ(store_report.find(Rule::kMmTrusted)->severity, Severity::kError);
  ASSERT_TRUE(load_report.has(Rule::kMmTrusted));
  EXPECT_EQ(load_report.find(Rule::kMmTrusted)->severity, Severity::kWarning);
}

TEST(Analyzer, AccessBeyondPhysicalMemory) {
  const auto object = assemble(R"(
      .entry start
  start:
      li r2, 0x200000
      ldw r3, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kMmOutOfMem)) << report.to_string();
}

TEST(Analyzer, UnknownBaseRegisterIsNotFlagged) {
  // The address comes in via the mailbox — statically unknown, no claim.
  const auto object = assemble(R"(
      .entry start
  start:
      ldw r2, [r1]
      stw r2, [r1+4]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kMmDevice));
  EXPECT_FALSE(report.has(Rule::kMmTrusted));
  EXPECT_FALSE(report.has(Rule::kMmOutOfMem));
}

TEST(Analyzer, ConstantsMergedAcrossBranchesStayKnown) {
  // Both paths load the same device base; the merge keeps it constant.
  const auto object = assemble(R"(
      .entry start
  start:
      cmpi r1, 0
      jz other
      li r2, 0x100400
      jmp use
  other:
      li r2, 0x100400
  use:
      stw r1, [r2]
      movi r0, 3
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kMmDevice)) << report.to_string();
}

// ---------------------------------------------------------------------------
// Image structure (IM*) and data-only objects
// ---------------------------------------------------------------------------

TEST(Analyzer, OddImageSize) {
  isa::ObjectFile object;
  object.image.assign(7, 0x00);
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kImSize)) << report.to_string();
}

TEST(Analyzer, MailboxOutsideImage) {
  auto object = object_with_words({word(0x42), word(0x00)});
  object.mailbox = 4;  // 4 + 24 > 8
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kImMailbox)) << report.to_string();
}

TEST(Analyzer, DataOnlyObjectsSkipCodePasses) {
  isa::ObjectFile object;
  object.flags = isa::kObjDataOnly;
  object.image.assign(33, 0xFF);  // odd size, nothing decodes: all fine
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Config: pass toggles and suppression
// ---------------------------------------------------------------------------

TEST(Analyzer, SuppressionDropsRule) {
  const auto object = assemble(R"(
      .entry start
  start:
      movi r1, 0
      jmpr r1
  )");
  Config config;
  config.suppress.insert(Rule::kDfUnresolved);
  const Report report = analysis::analyze(object, config);
  EXPECT_FALSE(report.has(Rule::kDfUnresolved)) << report.to_string();
  EXPECT_EQ(report.warnings(), 0u) << report.to_string();

  // The same program through the seed (no-dataflow) pipeline: suppressing
  // CF006 there drops its only warning too.
  config = Config{};
  config.dataflow = false;
  config.suppress.insert(Rule::kCfIndirect);
  const Report seed = analysis::analyze(object, config);
  EXPECT_FALSE(seed.has(Rule::kCfIndirect)) << seed.to_string();
  EXPECT_EQ(seed.warnings(), 0u) << seed.to_string();
}

TEST(Analyzer, DisabledPassesEmitNothing) {
  const auto object = assemble(R"(
      .stack 16
      .entry start
  start:
      li r2, 0x100400
      stw r1, [r2]
      subi sp, 64
      movi r0, 3
      int 0x21
  )");
  Config config;
  config.stack = false;
  config.mmio = false;
  const Report report = analysis::analyze(object, config);
  EXPECT_FALSE(report.has(Rule::kStDepth));
  EXPECT_FALSE(report.has(Rule::kMmDevice));
}

// ---------------------------------------------------------------------------
// Realistic idioms must stay clean (regression against false positives)
// ---------------------------------------------------------------------------

TEST(Analyzer, SecureTaskWithMessageHandlerIsClean) {
  const auto object = assemble(R"(
      .secure
      .stack 256
      .entry main
      .msg on_message
  main:
      movi r5, 0
  loop:
      movi r0, 8
      int 0x21
      jmp loop
  on_message:
      addi r5, 1
      movi r0, 9
      int 0x21
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Analyzer, StdlibRoutinesAreClean) {
  const auto object = assemble(isa::with_stdlib(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, text
      call lib_print_str
      li   r2, 0xBEEF
      call lib_print_hex
      movi r0, 3
      int  0x21
  text:
      .ascii "hello\0"
  )"));
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Loader lint gate
// ---------------------------------------------------------------------------

constexpr std::string_view kOverflowTask = R"(
    .stack 64
    .entry start
start:
    subi sp, 64
    movi r0, 3
    int 0x21
)";

TEST(LoaderGate, StrictModeRejectsBeforeAnyAllocation) {
  core::Platform::Config config;
  config.lint_mode = core::LintMode::kStrict;
  core::Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  const std::uint32_t free_before = platform.loader().arena().free_bytes();

  auto task = platform.load_task_source(std::string(kOverflowTask), {.name = "bad"});
  ASSERT_FALSE(task.is_ok());
  EXPECT_NE(task.status().to_string().find("static verifier"), std::string::npos)
      << task.status().to_string();
  // Rejected in the verify phase: no arena memory was ever allocated.
  EXPECT_EQ(platform.loader().arena().free_bytes(), free_before);
  EXPECT_GT(platform.loader().last_lint().errors(), 0u);
}

TEST(LoaderGate, WarnModeLoadsAndRecordsFindings) {
  core::Platform platform;  // default: kWarn
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(std::string(kOverflowTask), {.name = "warned"});
  ASSERT_TRUE(task.is_ok()) << task.status().to_string();
  EXPECT_GT(platform.loader().last_create().lint_findings, 0u);
  EXPECT_TRUE(platform.loader().last_lint().has(Rule::kStDepth));
}

TEST(LoaderGate, OffModeSkipsTheVerifier) {
  core::Platform::Config config;
  config.lint_mode = core::LintMode::kOff;
  core::Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(std::string(kOverflowTask), {.name = "unlinted"});
  ASSERT_TRUE(task.is_ok());
  EXPECT_EQ(platform.loader().last_create().lint_findings, 0u);
  EXPECT_TRUE(platform.loader().last_lint().clean());
}

TEST(LoaderGate, StrictModeAcceptsCleanTasks) {
  core::Platform::Config config;
  config.lint_mode = core::LintMode::kStrict;
  core::Platform platform(config);
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 3
      int 0x21
  )", {.name = "clean"});
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
}

TEST(LoaderGate, VerifierChargesNoMachineCycles) {
  // Two identical loads, lint on vs off: the cycle breakdown must match
  // exactly (the paper's load-cost tables are oblivious to the gate).
  const auto run = [](core::LintMode mode) {
    core::Platform::Config config;
    config.lint_mode = mode;
    core::Platform platform(config);
    EXPECT_TRUE(platform.boot().is_ok());
    auto task = platform.load_task_source(R"(
        .secure
        .stack 128
        .entry main
    main:
        movi r0, 3
        int 0x21
    )", {.name = "t"});
    EXPECT_TRUE(task.is_ok());
    return platform.loader().last_create().total;
  };
  EXPECT_EQ(run(core::LintMode::kOff), run(core::LintMode::kWarn));
}

// ---------------------------------------------------------------------------
// Value-set dataflow (DF*)
// ---------------------------------------------------------------------------

constexpr std::string_view kJumpTableTask = R"(
    .entry main
main:
    andi r1, 3
    shli r1, 2
    li   r2, table
    add  r2, r1
    ldw  r2, [r2]
    jmpr r2
case0:
    movi r0, 10
    jmp  done
case1:
    movi r0, 11
    jmp  done
case2:
    movi r0, 12
    jmp  done
case3:
    movi r0, 13
done:
    hlt
table:
    .word case0, case1, case2, case3
)";

TEST(Dataflow, JumpTableResolvesExactTargets) {
  const auto object = assemble(kJumpTableTask);
  const analysis::Analysis full = analysis::analyze_full(object);
  // The masked index bounds the table: the jmpr resolves to exactly the four
  // case labels and the report is clean (DF001 is informational).
  EXPECT_EQ(full.report.errors(), 0u) << full.report.to_string();
  EXPECT_EQ(full.report.warnings(), 0u) << full.report.to_string();
  ASSERT_TRUE(full.report.has(Rule::kDfResolved)) << full.report.to_string();
  ASSERT_EQ(full.dataflow.resolved.size(), 1u);
  const auto& [site, targets] = *full.dataflow.resolved.begin();
  EXPECT_EQ(targets.size(), 4u);
  for (const std::uint32_t target : targets) {
    EXPECT_TRUE(full.cfg.is_code(target)) << target;
  }
  // The resolved edges are spliced into the CFG: the dispatch block's
  // successors are the case blocks.
  const auto block = full.cfg.blocks.find(0);
  ASSERT_NE(block, full.cfg.blocks.end());
  EXPECT_EQ(block->second.successors,
            std::vector<std::uint32_t>(targets.begin(), targets.end()));

  // The identical program through the seed pipeline is a CF006 warning —
  // i.e. it used to fail --strict, and now lints clean.
  Config seed;
  seed.dataflow = false;
  const Report before = analysis::analyze(object, seed);
  EXPECT_TRUE(before.has(Rule::kCfIndirect)) << before.to_string();
  EXPECT_GT(before.warnings(), 0u);
}

TEST(Dataflow, ResolvedCallTightensStackDepth) {
  // The handler pushes 12 bytes on top of the 4-byte return address: 16
  // bytes worst case + 36 reserve > 48.  The seed pass could not see through
  // `callr` and stayed silent; the resolved call graph makes this a hard
  // ST001 verdict.
  const auto object = assemble(R"(
      .stack 48
      .entry main
  main:
      andi r1, 0
      shli r1, 2
      li   r2, table
      add  r2, r1
      ldw  r2, [r2]
      callr r2
      hlt
  deep:
      push r1
      push r2
      push r3
      pop  r3
      pop  r2
      pop  r1
      ret
  table:
      .word deep
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kStDepth)) << report.to_string();

  Config seed;
  seed.dataflow = false;
  const Report before = analysis::analyze(object, seed);
  EXPECT_FALSE(before.has(Rule::kStDepth)) << before.to_string();
}

TEST(Dataflow, RecursionThroughResolvedCallGraphIsDetected) {
  const auto object = assemble(R"(
      .entry main
  main:
      li   r2, table
      ldw  r2, [r2]
      callr r2
      hlt
  ping:
      li   r2, table
      ldw  r2, [r2]
      callr r2
      ret
  table:
      .word ping
  )");
  const Report report = analysis::analyze(object);
  EXPECT_TRUE(report.has(Rule::kStRecursion)) << report.to_string();
}

TEST(Dataflow, UnboundedTargetIsDf002) {
  const auto object = assemble(R"(
      .entry main
  main:
      jmpr r1
  )");
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kCfIndirect)) << report.to_string();
  ASSERT_TRUE(report.has(Rule::kDfUnresolved)) << report.to_string();
  EXPECT_EQ(report.errors(), 0u);
}

TEST(Dataflow, DataTargetIsDf003) {
  // The table points at itself: the resolved target is a relocated data
  // word, never executable code.
  const auto object = assemble(R"(
      .entry main
  main:
      li   r2, table
      ldw  r2, [r2]
      jmpr r2
  table:
      .word table
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kDfBadTarget)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kDfBadTarget)->severity, Severity::kError);
}

TEST(Dataflow, StoreIntoTableDemotesResolution) {
  // A store that may alias the jump table invalidates the `.word` contents:
  // the load degrades to Top and the site stays unresolved (DF002), never
  // falsely resolved from stale table entries.
  const auto object = assemble(R"(
      .entry main
  main:
      li   r2, table
      movi r1, 16
      stw  r1, [r2]
      ldw  r2, [r2]
      jmpr r2
  case0:
      hlt
  table:
      .word case0
  )");
  const Report report = analysis::analyze(object);
  EXPECT_FALSE(report.has(Rule::kDfResolved)) << report.to_string();
  EXPECT_TRUE(report.has(Rule::kDfUnresolved)) << report.to_string();
}

TEST(Dataflow, OutOfRegionAccessIsDf004) {
  const auto object = assemble(R"(
      .entry main
  main:
      li   r2, data
      addi r2, 0x2000
      ldw  r1, [r2]
      hlt
  data:
      .word 7
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kDfOutOfRegion)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kDfOutOfRegion)->severity, Severity::kError);
}

TEST(Dataflow, StraddlingAccessIsDf005) {
  // data + [0, 0x3FF] straddles the region boundary (small image + default
  // 256-byte stack): provable neither inside nor outside.
  const auto object = assemble(R"(
      .entry main
  main:
      andi r1, 0x3FF
      li   r2, data
      add  r2, r1
      ldw  r0, [r2]
      hlt
  data:
      .word 7
  )");
  const Report report = analysis::analyze(object);
  ASSERT_TRUE(report.has(Rule::kDfMayEscape)) << report.to_string();
  EXPECT_EQ(report.find(Rule::kDfMayEscape)->severity, Severity::kWarning);
  EXPECT_EQ(report.errors(), 0u) << report.to_string();
}

TEST(Dataflow, CertifiedAccessesAreCounted) {
  const auto object = assemble(kJumpTableTask);
  const analysis::Analysis full = analysis::analyze_full(object);
  // At least the table load is provably inside the EA-MPU region.
  EXPECT_GT(full.dataflow.certified_accesses, 0u);
  EXPECT_EQ(full.dataflow.indirect_sites, 1u);
  EXPECT_TRUE(full.dataflow.converged);
  EXPECT_GE(full.dataflow_iterations, 1);
}

// ---------------------------------------------------------------------------
// Differential soundness: every dynamically taken indirect edge must be in
// the statically resolved set (when the analyzer claimed one).
// ---------------------------------------------------------------------------

/// Execute `object` on a bare machine with the given r1 input; every
/// jmpr/callr edge the run takes is checked against `resolved`.
void check_dynamic_edges(const isa::ObjectFile& object,
                         const analysis::ResolvedTargets& resolved,
                         std::uint32_t r1, std::string_view label) {
  constexpr std::uint32_t kBase = 0x40000;
  ByteVec image = object.image;
  for (const isa::Relocation& reloc : object.relocs) {
    tbf::apply_relocation(reloc, image, kBase);
  }
  sim::Machine machine;
  for (std::size_t i = 0; i < image.size(); ++i) {
    machine.memory().write8(kBase + static_cast<std::uint32_t>(i), image[i]);
  }
  machine.cpu().eip = kBase + object.entry;
  machine.cpu().set_sp(0x60000);
  machine.cpu().regs[1] = r1;
  machine.set_indirect_branch_hook(
      [&](std::uint32_t pc, std::uint32_t target, bool) {
        ASSERT_GE(pc, kBase);
        const std::uint32_t site = pc - kBase;
        const auto it = resolved.find(site);
        if (it == resolved.end()) {
          return;  // the analyzer made no claim about this site
        }
        EXPECT_TRUE(std::find(it->second.begin(), it->second.end(),
                              target - kBase) != it->second.end())
            << label << ": dynamic edge " << std::hex << site << " -> "
            << target - kBase << " (r1=" << r1
            << ") is outside the statically resolved set";
      });
  const sim::HaltReason reason = machine.run(50'000);
  EXPECT_TRUE(reason == sim::HaltReason::kHltInstruction ||
              reason == sim::HaltReason::kCycleLimit)
      << label << ": r1=" << r1 << " halted with "
      << static_cast<int>(reason);
}

TEST(Dataflow, DifferentialSoundnessOverExamplesCorpus) {
  const std::filesystem::path dir(TYTAN_ASM_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t programs = 0;
  std::size_t resolved_sites = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".s") {
      continue;
    }
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::stringstream text;
    text << in.rdbuf();
    const auto object = assemble(text.str());
    const analysis::Analysis full = analysis::analyze_full(object);
    // The corpus is the --strict baseline: no errors, no warnings.
    EXPECT_EQ(full.report.errors(), 0u)
        << entry.path() << "\n" << full.report.to_string();
    EXPECT_EQ(full.report.warnings(), 0u)
        << entry.path() << "\n" << full.report.to_string();
    resolved_sites += full.dataflow.resolved.size();
    for (std::uint32_t r1 = 0; r1 < 8; ++r1) {
      check_dynamic_edges(object, full.dataflow.resolved, r1,
                          entry.path().filename().string());
    }
    ++programs;
  }
  EXPECT_GE(programs, 5u);       // the corpus actually ran
  EXPECT_GE(resolved_sites, 4u);  // and it exercises resolution
}

}  // namespace
}  // namespace tytan
