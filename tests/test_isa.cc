#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/isa.h"

namespace tytan::isa {
namespace {

TEST(Encoding, FieldPacking) {
  const Instruction instr{Opcode::kLdw, 3, 7, 0xFFFC};
  const std::uint32_t word = encode(instr);
  EXPECT_EQ(word >> 24, 0x20u);
  EXPECT_EQ((word >> 20) & 0xF, 3u);
  EXPECT_EQ((word >> 16) & 0xF, 7u);
  EXPECT_EQ(word & 0xFFFF, 0xFFFCu);
}

TEST(Encoding, SignedImmediate) {
  const Instruction instr{Opcode::kMovi, 0, 0, static_cast<std::uint16_t>(-5 & 0xFFFF)};
  EXPECT_EQ(instr.simm(), -5);
}

class OpcodeRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(OpcodeRoundTrip, EncodeDecode) {
  const std::uint8_t raw = GetParam();
  if (!opcode_valid(raw)) {
    GTEST_SKIP() << "undefined opcode";
  }
  const Instruction instr{static_cast<Opcode>(raw), 5, 2, 0x1234};
  const auto decoded = decode(encode(instr));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, instr);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip, ::testing::Range<std::uint8_t>(0, 0x50));

TEST(Decoding, RejectsUndefinedOpcodes) {
  EXPECT_FALSE(decode(0xFF00'0000u).has_value());
  EXPECT_FALSE(decode(0x5000'0000u).has_value());
  EXPECT_TRUE(decode(0x0000'0000u).has_value());  // NOP
}

TEST(Cycles, MemoryOpsCostMoreThanAlu) {
  EXPECT_GT(base_cycles(Opcode::kLdw), base_cycles(Opcode::kAdd));
  EXPECT_GT(base_cycles(Opcode::kInt), base_cycles(Opcode::kCall));
}

TEST(Disasm, FormatsCommonInstructions) {
  EXPECT_EQ(disassemble({Opcode::kMovi, 1, 0, 42}, 0), "movi r1, 42");
  EXPECT_EQ(disassemble({Opcode::kLdw, 2, 7, 8}, 0), "ldw r2, [sp+8]");
  EXPECT_EQ(disassemble({Opcode::kStw, 0, 3, static_cast<std::uint16_t>(-4 & 0xFFFF)}, 0),
            "stw r0, [r3-4]");
  EXPECT_EQ(disassemble({Opcode::kRet, 0, 0, 0}, 0), "ret");
  EXPECT_EQ(disassemble({Opcode::kInt, 0, 0, 0x21}, 0), "int 0x21");
}

TEST(Disasm, BranchTargetsAreAbsolute) {
  // jmp +8 at pc=0x100 -> target 0x100 + 4 + 8 = 0x10c.
  EXPECT_EQ(disassemble({Opcode::kJmp, 0, 0, 8}, 0x100), "jmp 0x10c");
}

TEST(Disasm, InvalidWord) {
  EXPECT_EQ(disassemble_word(0xEE00'0000u, 0), "<invalid 0xee000000>");
}

}  // namespace
}  // namespace tytan::isa
