// Chaos soak: a long randomized scenario mixing every platform feature —
// loads, unloads, updates, IPC, sealing, budgets, CAN traffic, attackers —
// with global invariants checked throughout.  Deterministic seed.
#include <gtest/gtest.h>

#include <random>

#include "core/platform.h"

namespace tytan {
namespace {

using core::Platform;

std::string worker_source(int flavor) {
  switch (flavor % 4) {
    case 0:  // yielder
      return "    .secure\n    .stack 128\n    .entry main\nmain:\n"
             "    movi r0, 1\n    int 0x21\n    jmp main\n    .word " +
             std::to_string(flavor) + "\n";
    case 1:  // sleeper
      return "    .secure\n    .stack 128\n    .entry main\nmain:\n"
             "    movi r0, 2\n    movi r1, 2\n    int 0x21\n    jmp main\n    .word " +
             std::to_string(flavor) + "\n";
    case 2:  // sealer (stores a word, then yields forever)
      return R"(
    .secure
    .stack 256
    .entry main
main:
    li   r1, data
    movi r2, 4
    movi r3, 1
    movi r0, 10
    int  0x21
park:
    movi r0, 1
    int  0x21
    jmp  park
data:
    .word )" + std::to_string(0x1000 + flavor) + "\n";
    default:  // attacker: pokes the platform key register, gets killed
      return "    .secure\n    .stack 128\n    .entry main\nmain:\n"
             "    li r2, 0x100600\n    ldw r3, [r2]\nh:  jmp h\n    .word " +
             std::to_string(flavor) + "\n";
  }
}

TEST(Soak, TwoSimulatedSecondsOfChaos) {
  std::mt19937 rng(2025);
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  std::vector<rtos::TaskHandle> live;
  int flavor = 0;
  std::uint64_t loads = 0, unloads = 0, updates = 0, cans = 0;

  for (int step = 0; step < 400; ++step) {
    switch (rng() % 6) {
      case 0:
      case 1: {  // load something (if capacity allows)
        auto task = platform.load_task_source(
            worker_source(flavor), {.name = "w" + std::to_string(flavor),
                                    .priority = static_cast<unsigned>(1 + rng() % 5)});
        ++flavor;
        if (task.is_ok()) {
          ++loads;
          if (rng() % 4 == 0) {
            (void)platform.set_task_budget(*task, 4'000 + rng() % 20'000);
          }
          live.push_back(*task);
        }
        break;
      }
      case 2: {  // unload a random live task
        if (!live.empty()) {
          const std::size_t index = rng() % live.size();
          if (platform.scheduler().get(live[index]) != nullptr &&
              platform.unload_task(live[index]).is_ok()) {
            ++unloads;
          }
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
        }
        break;
      }
      case 3: {  // runtime-update a random live task
        if (!live.empty()) {
          const std::size_t index = rng() % live.size();
          if (platform.scheduler().get(live[index]) != nullptr) {
            auto updated = platform.update_task(
                live[index], worker_source(flavor),
                {.name = "u" + std::to_string(flavor)});
            ++flavor;
            if (updated.is_ok()) {
              ++updates;
              live[index] = *updated;
            }
          }
        }
        break;
      }
      case 4: {  // CAN traffic
        platform.can_bus().inject({.id = static_cast<std::uint16_t>(rng() & 0x7FF),
                                   .dlc = 8,
                                   .data = {1, 2, 3, 4, 5, 6, 7, 8}});
        ++cans;
        break;
      }
      case 5:
        break;  // just run
    }
    platform.run_for(sim::kClockHz / 200);  // 5 ms of simulated time

    // Global invariants, every step.
    ASSERT_FALSE(platform.machine().halted()) << "step " << step;
    // Registry and shadow bookkeeping match the scheduler's view.
    std::size_t secure_live = 0;
    for (const auto handle : platform.scheduler().handles()) {
      const rtos::Tcb* tcb = platform.scheduler().get(handle);
      if (tcb != nullptr && tcb->kind == rtos::TaskKind::kGuest && tcb->secure &&
          tcb->measured) {
        ++secure_live;
        ASSERT_NE(platform.rtm().find_by_handle(handle), nullptr) << "step " << step;
      }
    }
    ASSERT_EQ(platform.rtm().entries().size(), secure_live) << "step " << step;
    // The EA-MPU never leaks slots below the 12 static rules.
    ASSERT_GE(platform.mpu().slots_in_use(), 12u);
  }

  // The platform survived ~2 simulated seconds of churn and stayed live.
  EXPECT_GT(platform.kernel().tick_count(), 1'500u);
  EXPECT_GT(loads, 50u);
  EXPECT_GT(unloads, 10u);
  EXPECT_GT(updates, 5u);
  EXPECT_GT(cans, 30u);
  // Attackers were contained along the way.
  EXPECT_GT(platform.kernel().fault_kills(), 5u);
  // Clean teardown of everything still alive.
  for (const auto handle : live) {
    if (platform.scheduler().get(handle) != nullptr) {
      EXPECT_TRUE(platform.unload_task(handle).is_ok());
    }
  }
  EXPECT_EQ(platform.rtm().entries().size(), 0u);
}

}  // namespace
}  // namespace tytan
