// Guest standard-library routines (src/isa/stdlib).
#include <gtest/gtest.h>

#include "core/platform.h"
#include "isa/stdlib.h"

namespace tytan {
namespace {

using core::Platform;

std::string run_task(const std::string& user_source, std::uint64_t cycles = 20'000'000) {
  Platform platform;
  EXPECT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(isa::with_stdlib(user_source),
                                        {.name = "stdlib-test", .priority = 3});
  EXPECT_TRUE(task.is_ok()) << task.status().to_string();
  platform.run_until([&] { return platform.scheduler().get(*task) == nullptr; }, cycles);
  return platform.serial().output();
}

TEST(Stdlib, PrintStr) {
  const std::string out = run_task(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, text
      call lib_print_str
      movi r0, 3
      int  0x21
  text:
      .ascii "hello, stdlib\0"
  )");
  EXPECT_EQ(out, "hello, stdlib");
}

TEST(Stdlib, PrintHex) {
  const std::string out = run_task(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, 0xDEADBE0F
      call lib_print_hex
      movi r0, 3
      int  0x21
  )");
  EXPECT_EQ(out, "deadbe0f");
}

TEST(Stdlib, PrintHexZeroAndMax) {
  const std::string out = run_task(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r2, 0
      call lib_print_hex
      li   r2, 0xFFFFFFFF
      call lib_print_hex
      movi r0, 3
      int  0x21
  )");
  EXPECT_EQ(out, "00000000ffffffff");
}

TEST(Stdlib, MemcpyAndMemset) {
  const std::string out = run_task(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, dst
      li   r3, src
      movi r4, 5
      call lib_memcpy
      li   r2, dst
      call lib_print_str
      li   r2, dst
      movi r3, 46          ; '.'
      movi r4, 4
      call lib_memset
      li   r2, dst
      call lib_print_str
      movi r0, 3
      int  0x21
  src:
      .ascii "wxyz\0"
  dst:
      .space 8
  )");
  EXPECT_EQ(out, "wxyz....");  // memcpy copies the NUL too; memset keeps it
}

TEST(Stdlib, RoutinesPreserveRegisters) {
  const std::string out = run_task(R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, 0x11111111
      mov  r3, r2
      mov  r4, r2
      call lib_print_hex
      ; r2/r3/r4 must be intact afterwards
      cmp  r2, r3
      jnz  bad
      cmp  r2, r4
      jnz  bad
      movi r1, 43          ; '+'
      jmp  put
  bad:
      movi r1, 33          ; '!'
  put:
      movi r0, 4
      int  0x21
      movi r0, 3
      int  0x21
  )");
  EXPECT_EQ(out, "11111111+");
}

TEST(Stdlib, DelayHelper) {
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto task = platform.load_task_source(isa::with_stdlib(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r1, 65
      movi r0, 4
      int  0x21
      movi r2, 5
      call lib_delay
      movi r1, 66
      movi r0, 4
      int  0x21
      movi r0, 3
      int  0x21
  )"), {.name = "delayer", .priority = 3});
  ASSERT_TRUE(task.is_ok());
  platform.run_until([&] { return platform.serial().output() == "A"; }, 5'000'000);
  const std::uint64_t t0 = platform.machine().cycles();
  platform.run_until([&] { return platform.serial().output() == "AB"; }, 50'000'000);
  EXPECT_GE(platform.machine().cycles() - t0, 4ull * platform.config().tick_period);
}

TEST(Stdlib, ComposesWithSecurePrologue) {
  // with_stdlib + .secure: library lands after user code, prologue in front;
  // symbols resolve and the task still measures and runs.
  Platform platform;
  ASSERT_TRUE(platform.boot().is_ok());
  auto object = isa::assemble(isa::with_stdlib(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 3
      int  0x21
  )"));
  ASSERT_TRUE(object.is_ok()) << object.status().to_string();
  EXPECT_TRUE(object->symbols.contains("lib_print_str"));
  EXPECT_TRUE(object->symbols.contains("__tytan_entry"));
  EXPECT_TRUE(object->relocs.empty());  // stdlib is position independent
}

}  // namespace
}  // namespace tytan
