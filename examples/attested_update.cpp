// Dynamic software update with remote attestation.
//
// Multi-stakeholder scenario (paper §2): a component supplier ships firmware
// v1 for an ECU; later it pushes v2.  The update is applied *at runtime* —
// unload v1, load v2 — and the supplier's backend verifies through remote
// attestation which version actually runs, detecting both stale and
// tampered images.
#include <cstdio>
#include <map>

#include "core/platform.h"

using namespace tytan;

namespace {

std::string firmware(unsigned version) {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    movi r0, 4
    movi r1, )" + std::to_string('0' + version) + R"(   ; print version digit
    int  0x21
loop:
    movi r0, 2
    movi r1, 50
    int  0x21
    jmp  loop
)";
}

/// The supplier's backend: knows Ka (from the manufacturer) and the golden
/// measurements of every released version.
struct Backend {
  crypto::Key128 ka{};
  std::map<std::string, unsigned> golden;  // hex id -> version

  bool check(const core::AttestationReport& report, std::uint64_t nonce,
             unsigned expected_version) const {
    const auto it = golden.find(hex_encode(report.identity));
    if (it == golden.end()) {
      std::printf("  backend: UNKNOWN measurement %s (tampered image?)\n",
                  hex_encode(report.identity).c_str());
      return false;
    }
    if (!core::RemoteAttest::verify(ka, report, nonce, report.identity)) {
      std::printf("  backend: MAC verification FAILED (wrong device key?)\n");
      return false;
    }
    std::printf("  backend: device runs v%u (%s) — %s\n", it->second,
                hex_encode(report.identity).c_str(),
                it->second == expected_version ? "up to date" : "STALE");
    return it->second == expected_version;
  }
};

rtos::TaskIdentity golden_measurement(const std::string& source) {
  // The supplier computes the expected id_t offline from the released binary
  // (hash of the un-relocated image — exactly what the RTM measures).
  auto object = isa::assemble(source);
  TYTAN_CHECK(object.is_ok(), object.status().to_string());
  const auto digest = crypto::Sha1::hash(object->image);
  return core::Rtm::identity_from_digest(digest);
}

}  // namespace

int main() {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  Backend backend;
  backend.ka = core::RemoteAttest::derive_ka(platform.key_register().raw_key());
  backend.golden[hex_encode(golden_measurement(firmware(1)))] = 1;
  backend.golden[hex_encode(golden_measurement(firmware(2)))] = 2;

  // Deploy v1.
  auto v1 = platform.load_task_source(firmware(1), {.name = "ecu-fw", .priority = 3});
  TYTAN_CHECK(v1.is_ok(), v1.status().to_string());
  platform.run_for(2'000'000);
  std::printf("deployed v1; serial: %s\n", platform.serial().output().c_str());

  std::uint64_t nonce = platform.rng().next64();
  auto report = platform.remote_attest().attest_task(*v1, nonce);
  backend.check(*report, nonce, /*expected_version=*/2);  // backend wants v2 -> stale

  // Runtime update: unload v1, load v2 (dynamic configuration, paper §2).
  std::printf("\napplying update v1 -> v2 at runtime...\n");
  TYTAN_CHECK(platform.unload_task(*v1).is_ok(), "unload failed");
  auto v2 = platform.load_task_source(firmware(2), {.name = "ecu-fw2", .priority = 3});
  TYTAN_CHECK(v2.is_ok(), v2.status().to_string());
  platform.run_for(2'000'000);
  std::printf("serial now: %s\n", platform.serial().output().c_str());

  nonce = platform.rng().next64();
  report = platform.remote_attest().attest_task(*v2, nonce);
  const bool up_to_date = backend.check(*report, nonce, /*expected_version=*/2);

  // A tampered image measures to an unknown identity: simulate a supply-chain
  // attack by flipping one instruction in v2's source.
  std::printf("\nattacker deploys a patched binary...\n");
  std::string evil = firmware(2);
  evil.replace(evil.find("movi r1, 50"), 11, "movi r1, 51");
  TYTAN_CHECK(platform.unload_task(*v2).is_ok(), "unload failed");
  auto bad = platform.load_task_source(evil, {.name = "ecu-fw-evil", .priority = 3});
  TYTAN_CHECK(bad.is_ok(), bad.status().to_string());
  nonce = platform.rng().next64();
  report = platform.remote_attest().attest_task(*bad, nonce);
  const bool caught = !backend.check(*report, nonce, /*expected_version=*/2);

  std::printf("\nresult: update %s, tamper %s\n", up_to_date ? "VERIFIED" : "FAILED",
              caught ? "DETECTED" : "MISSED");
  return up_to_date && caught ? 0 : 1;
}
