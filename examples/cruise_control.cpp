// Adaptive cruise control (the paper's Figure 2 use case) with simulated
// vehicle dynamics.
//
// t1 (pedal monitor) and t0 (engine control) run from boot at 1.5 kHz.
// Mid-drive the driver activates cruise control: t2 (radar monitor) is
// loaded dynamically — a ~28 ms operation — while t0/t1 keep their
// deadlines.  The host simulates simple longitudinal dynamics: the throttle
// commands move our speed toward the pedal demand, and the radar distance to
// the lead vehicle shrinks until t2's reports make t0 back off.
#include <cstdio>

#include "core/platform.h"

using namespace tytan;

namespace {

constexpr std::uint32_t kTick = 32'000;  // 1.5 kHz at 48 MHz

constexpr std::string_view kT0 = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r6, 0x100400
    movi r3, 0
    movi r4, 0
loop:
    li   r5, __tytan_mailbox
    ldw  r1, [r5+8]
    cmpi r1, 1
    jnz  skip_pedal
    ldw  r3, [r5+12]
skip_pedal:
    cmpi r1, 2
    jnz  skip_radar
    ldw  r4, [r5+12]
skip_radar:
    mov  r1, r4
    shri r1, 1            ; radar braking term
    mov  r2, r3
    sub  r2, r1
    jge  positive
positive:
    stw  r2, [r6]
    movi r0, 2
    movi r1, 1
    int  0x21
    jmp  loop
)";

std::string monitor(std::uint32_t mmio, unsigned tag, unsigned pad) {
  std::string s = R"(
    .secure
    .stack 256
    .entry main
main:
loop:
    li   r5, idt0
    ldw  r1, [r5]
    ldw  r2, [r5+4]
    li   r6, )" + std::to_string(mmio) + R"(
    ldw  r4, [r6]
    movi r3, )" + std::to_string(tag) + R"(
    movi r0, 1
    int  0x22
    movi r0, 2
    movi r1, 1
    int  0x21
    jmp  loop
idt0:
    .word 0, 0
)";
  if (pad != 0) {
    s += "    .space " + std::to_string(pad) + "\n";
  }
  return s;
}

void provision(core::Platform& platform, rtos::TaskHandle task, const std::string& source,
               const rtos::TaskIdentity& id) {
  const rtos::Tcb* tcb = platform.scheduler().get(task);
  auto probe = isa::assemble(source);
  const std::uint32_t idr = tcb->region_base + probe->symbols.at("idt0");
  platform.machine().memory().write32(idr, load_le32(id.data()));
  platform.machine().memory().write32(idr + 4, load_le32(id.data() + 4));
}

}  // namespace

int main() {
  core::Platform::Config config;
  config.tick_period = kTick;
  core::Platform platform(config);
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  auto t0 = platform.load_task_source(kT0, {.name = "t0", .priority = 6});
  const std::string t1_src = monitor(sim::kMmioPedal, 1, 0);
  auto t1 = platform.load_task_source(t1_src, {.name = "t1", .priority = 5,
                                               .auto_start = false});
  if (!t0.is_ok() || !t1.is_ok()) {
    std::fprintf(stderr, "task load failed\n");
    return 1;
  }
  provision(platform, *t1, t1_src, platform.scheduler().get(*t0)->identity);
  (void)platform.resume_task(*t1);

  // Host-side vehicle model, advanced every simulated millisecond.
  double speed_kmh = 50.0;
  double lead_distance_m = 120.0;
  const double lead_speed_kmh = 62.0;
  bool cruise_requested = false;
  bool t2_started = false;
  rtos::TaskHandle t2 = rtos::kNoTask;
  const std::string t2_src = monitor(sim::kMmioRadar, 2, 11'800);

  platform.pedal().set_value(70);  // driver pressing the accelerator

  std::printf("time(ms) speed(km/h) lead-gap(m) throttle  phase\n");
  for (int ms = 0; ms < 400; ++ms) {
    platform.run_for(sim::kClockHz / 1000);

    // Vehicle dynamics: throttle accelerates, drag decelerates.
    const auto& commands = platform.engine().commands();
    const double throttle = commands.empty() ? 0.0 : commands.back().value;
    speed_kmh += (throttle * 0.012 - (speed_kmh * 0.006));
    lead_distance_m += (lead_speed_kmh - speed_kmh) / 3.6 * 0.001 * 50;
    lead_distance_m = std::max(lead_distance_m, 0.0);
    platform.radar().set_value(
        static_cast<std::uint32_t>(std::max(0.0, 120.0 - lead_distance_m)));

    // The driver engages cruise control at t = 120 ms.
    if (ms == 120) {
      cruise_requested = true;
      auto object = isa::assemble(t2_src);
      auto handle = platform.load_task_async(object.take(),
                                             {.name = "t2", .priority = 5,
                                              .auto_start = false});
      if (handle.is_ok()) {
        t2 = *handle;
      }
      std::printf("-- cruise control engaged: loading t2 (radar monitor) --\n");
    }
    if (cruise_requested && !t2_started && !platform.load_in_progress() &&
        t2 != rtos::kNoTask) {
      provision(platform, t2, t2_src, platform.scheduler().get(*t0)->identity);
      (void)platform.resume_task(t2);
      t2_started = true;
      std::printf("-- t2 loaded, measured, and scheduled (id %s) --\n",
                  hex_encode(platform.scheduler().get(t2)->identity).c_str());
    }

    if (ms % 40 == 0) {
      std::printf("%7d %11.1f %11.1f %8.0f  %s\n", ms, speed_kmh, lead_distance_m,
                  throttle,
                  t2_started      ? "cruise (radar active)"
                  : cruise_requested ? "loading t2"
                                     : "manual");
    }
  }

  const auto* tcb0 = platform.scheduler().get(*t0);
  const auto* tcb1 = platform.scheduler().get(*t1);
  std::printf("\nactivations: t0=%llu t1=%llu t2=%llu; engine commands=%zu; IPC "
              "delivered=%llu\n",
              static_cast<unsigned long long>(tcb0->activations),
              static_cast<unsigned long long>(tcb1->activations),
              static_cast<unsigned long long>(
                  t2 != rtos::kNoTask ? platform.scheduler().get(t2)->activations : 0),
              platform.engine().commands().size(),
              static_cast<unsigned long long>(platform.ipc_proxy().messages_delivered()));
  std::printf("the radar term visibly reduced the throttle once t2 came online — with "
              "hard real-time behaviour intact throughout the 28 ms load.\n");
  return 0;
}
