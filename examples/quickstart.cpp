// Quickstart: boot a TyTAN platform, load a secure task from assembly
// source, watch it run, and attest it to a remote verifier.
//
//   $ ./quickstart
//
// Walks through the whole stack: secure boot -> dynamic loading (relocation,
// EA-MPU configuration, RTM measurement) -> scheduling -> syscalls -> remote
// attestation.
#include <cstdio>

#include "common/bytes.h"
#include "core/platform.h"

using namespace tytan;

int main() {
  // 1. Build and boot the platform (Figure 1 of the paper).
  core::Platform platform;
  auto boot = platform.boot();
  if (!boot.is_ok()) {
    std::fprintf(stderr, "secure boot failed: %s\n", boot.status().to_string().c_str());
    return 1;
  }
  std::printf("secure boot: %zu trusted components verified (%u bytes of TCB)\n",
              boot->components.size(), boot->trusted_bytes);
  for (const auto& component : boot->components) {
    std::printf("  [ok] %-14s @ 0x%05x  (%u bytes)\n", component.name.c_str(),
                component.window, component.footprint);
  }

  // 2. Write a secure task in Peak-32 assembly.  `.secure` makes the tool
  //    chain inject the TyTAN entry routine; the OS cannot touch this task.
  constexpr std::string_view kHello = R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, greeting
  next:
      ldb  r1, [r2]
      cmpi r1, 0
      jz   done
      movi r0, 4          ; kSysPutchar
      int  0x21
      addi r2, 1
      jmp  next
  done:
      movi r0, 3          ; kSysExit
      int  0x21
  greeting:
      .ascii "hello from a secure task\n\0"
  )";

  auto task = platform.load_task_source(kHello, {.name = "hello", .priority = 3});
  if (!task.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", task.status().to_string().c_str());
    return 1;
  }
  const rtos::Tcb* tcb = platform.scheduler().get(*task);
  std::printf("\nloaded 'hello' at 0x%05x (%u bytes, measured id_t = %s)\n",
              tcb->region_base, tcb->image_size,
              hex_encode(tcb->identity).c_str());

  // 3. Attest the task to a remote verifier *before* running it.
  const std::uint64_t nonce = platform.rng().next64();
  auto report = platform.remote_attest().attest_task(*task, nonce);
  const auto ka = core::RemoteAttest::derive_ka(platform.key_register().raw_key());
  const bool verified =
      report.is_ok() && core::RemoteAttest::verify(ka, *report, nonce, tcb->identity);
  std::printf("remote attestation: nonce=%016llx -> %s\n",
              static_cast<unsigned long long>(nonce),
              verified ? "VERIFIED" : "REJECTED");

  // 4. Run the simulation; the kernel schedules the task, which prints over
  //    the serial syscall and exits.
  platform.run_until([&] { return platform.scheduler().get(*task) == nullptr; },
                     20'000'000);
  std::printf("\nserial output:\n%s", platform.serial().output().c_str());
  std::printf("\nsimulated %.2f ms (%llu cycles, %llu guest instructions, %llu IRQs)\n",
              static_cast<double>(platform.machine().cycles()) * 1000.0 / sim::kClockHz,
              static_cast<unsigned long long>(platform.machine().cycles()),
              static_cast<unsigned long long>(platform.machine().instructions_executed()),
              static_cast<unsigned long long>(platform.machine().interrupts_dispatched()));
  return verified ? 0 : 1;
}
