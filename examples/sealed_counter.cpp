// Sealed storage: a secure task persists state across its own unload/reload,
// bound to its binary identity (paper §3, "Secure storage").
//
// The task maintains a boot counter in TyTAN secure storage.  Every run it
// unseals the counter (Kt = HMAC(id_t | Kp)), increments it, re-seals it,
// prints it, and exits.  A *modified* binary — same developer, one changed
// instruction — derives a different Kt and cannot read the counter.
#include <cstdio>

#include "core/platform.h"

using namespace tytan;

namespace {

constexpr std::string_view kCounterTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r1, buf
    movi r2, 4
    movi r3, 1          ; storage slot
    movi r0, 11         ; kSysSealLoad
    int  0x21
    cmpi r0, -1
    jnz  have_counter
    li   r4, buf        ; first boot: counter = 0
    movi r5, 0
    stw  r5, [r4]
have_counter:
    li   r4, buf
    ldw  r5, [r4]
    addi r5, 1          ; increment boot counter
    stw  r5, [r4]
    movi r0, 10         ; kSysSealStore
    li   r1, buf
    movi r2, 4
    movi r3, 1
    int  0x21
    movi r0, 4          ; print '0' + counter
    li   r4, buf
    ldw  r1, [r4]
    addi r1, 48
    int  0x21
    movi r0, 3          ; exit
    int  0x21
buf:
    .word 0
)";

bool run_instance(core::Platform& platform, std::string_view source, const char* name) {
  auto task = platform.load_task_source(source, {.name = name, .priority = 3});
  if (!task.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", task.status().to_string().c_str());
    return false;
  }
  return platform.run_until([&] { return platform.scheduler().get(*task) == nullptr; },
                            50'000'000);
}

}  // namespace

int main() {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  std::printf("running the counter task three times (same binary, same id_t):\n");
  for (int i = 0; i < 3; ++i) {
    if (!run_instance(platform, kCounterTask, "counter")) {
      return 1;
    }
  }
  std::printf("  serial: %s   <- 1, 2, 3: state survived unload/reload\n",
              platform.serial().output().c_str());

  std::printf("\nrunning a MODIFIED binary (one instruction changed):\n");
  std::string patched(kCounterTask);
  patched.replace(patched.find("addi r1, 48"), 11, "addi r1, 64");  // prints '@'+n
  if (!run_instance(platform, patched, "patched")) {
    return 1;
  }
  std::printf("  serial: %s   <- the patched task saw NO counter (different id_t -> "
              "different Kt) and started from 1\n",
              platform.serial().output().c_str());

  std::printf("\nsealed blobs in the storage area: %zu (%u bytes)\n",
              platform.secure_storage().blob_count(),
              platform.secure_storage().bytes_used());
  const bool ok = platform.serial().output() == std::string("123") + char('@' + 1);
  std::printf("%s\n", ok ? "OK" : "UNEXPECTED OUTPUT");
  return ok ? 0 : 1;
}
