// Secure CAN gateway — a firewall ECU as a TyTAN secure task.
//
// Automotive attacks routinely pivot from the infotainment bus onto the
// powertrain bus (paper §1 cites Checkoway'11 / Koscher'10 / Miller-Valasek).
// A gateway ECU that filters frames is a natural TyTAN workload: the filter
// logic and its whitelist run as a *secure task* the (possibly compromised)
// OS cannot tamper with, its binary is remotely attestable, and the frame
// path is interrupt-driven with real-time bounds.
//
// The task parks on the CAN IRQ; for every received frame it forwards
// whitelisted identifiers (0x010 steering, 0x020 braking) unmodified and
// drops everything else, keeping a drop counter it prints on demand.
#include <cstdio>

#include "core/platform.h"
#include "isa/stdlib.h"

using namespace tytan;

namespace {

constexpr std::string_view kGateway = R"(
    .secure
    .stack 512
    .entry main
    .equ CAN, 0x100700
main:
loop:
    movi r0, 16            ; kSysWaitIrq(CAN)
    movi r1, 0x23
    int  0x21
drain:
    li   r2, CAN
    ldw  r3, [r2]          ; STATUS: frames waiting?
    cmpi r3, 0
    jz   loop
    ldw  r3, [r2+4]        ; RX_ID | dlc<<16
    mov  r4, r3
    andi r4, 0x7FF         ; identifier
    cmpi r4, 0x10
    jz   forward
    cmpi r4, 0x20
    jz   forward
    ; not whitelisted: drop and count
    li   r5, drop_count
    ldw  r6, [r5]
    addi r6, 1
    stw  r6, [r5]
    jmp  next
forward:
    stw  r3, [r2+20]       ; TX_ID (id + dlc pass through)
    ldw  r6, [r2+8]
    stw  r6, [r2+24]       ; TX_DATA0
    ldw  r6, [r2+12]
    stw  r6, [r2+28]       ; TX_DATA1
    movi r6, 1
    stw  r6, [r2+32]       ; TX_SEND
next:
    movi r6, 1
    stw  r6, [r2+16]       ; RX_POP
    jmp  drain
drop_count:
    .word 0
)";

}  // namespace

int main() {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  auto gateway = platform.load_task_source(kGateway, {.name = "gateway", .priority = 5});
  if (!gateway.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", gateway.status().to_string().c_str());
    return 1;
  }
  const rtos::Tcb* tcb = platform.scheduler().get(*gateway);
  std::printf("gateway loaded: id_t = %s (attestable filter logic, OS-untouchable)\n",
              hex_encode(tcb->identity).c_str());
  platform.run_for(300'000);  // park on the IRQ

  // Traffic: legitimate control frames interleaved with an injection attack.
  struct TestFrame {
    std::uint16_t id;
    const char* what;
  };
  const TestFrame traffic[] = {
      {0x010, "steering angle"},      {0x020, "brake pressure"},
      {0x7DF, "OBD-II probe"},        {0x010, "steering angle"},
      {0x3E0, "infotainment spam"},   {0x020, "brake pressure"},
      {0x555, "forged engine frame"}, {0x010, "steering angle"},
  };
  std::printf("\ninjecting %zu frames:\n", std::size(traffic));
  for (const TestFrame& frame : traffic) {
    platform.can_bus().inject({.id = frame.id, .dlc = 8,
                               .data = {0xAA, 0xBB, 0, 0, 0, 0, 0, 0}});
    platform.run_for(200'000);
    std::printf("  0x%03x %-20s -> %s\n", frame.id, frame.what,
                (frame.id == 0x010 || frame.id == 0x020) ? "FORWARDED" : "DROPPED");
  }
  platform.run_for(500'000);

  const auto& forwarded = platform.can_bus().transmitted();
  std::printf("\nforwarded %zu / %zu frames (expected 5)\n", forwarded.size(),
              std::size(traffic));
  for (const auto& frame : forwarded) {
    std::printf("  -> 0x%03x dlc=%u\n", frame.id, frame.dlc);
  }

  // The drop counter lives in EA-MPU-protected task memory: the OS cannot
  // zero it to hide an attack.  (Read here through the RTM's trusted view.)
  auto object = isa::assemble(kGateway);
  const std::uint32_t drop_addr =
      tcb->region_base + object->symbols.at("drop_count");
  auto drops = platform.machine().fw_read32(core::Rtm::kIdent, drop_addr);
  const bool os_blocked =
      !platform.mpu().allows(sim::kFwOsKernel + 4, drop_addr, sim::Access::kWrite);
  std::printf("\ndropped frames (from protected counter): %u; OS write to the counter: "
              "%s\n",
              drops.is_ok() ? *drops : 0, os_blocked ? "DENIED" : "ALLOWED!?");

  const bool ok = forwarded.size() == 5 && drops.is_ok() && *drops == 3 && os_blocked;
  std::printf("%s\n", ok ? "OK: the gateway enforced the whitelist under hardware "
                           "isolation"
                         : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
