; State-machine loop: every iteration dispatches the current selector through
; the jump table.  Exercises join-with-refinement at the loop head — the back
; edge carries `r3 < 4` (from `cmpi`/`jc`), so the index stays bounded and
; the `jmpr` resolves across all iterations.
    .entry main

main:
    movi r0, 0           ; accumulator
    movi r3, 0           ; selector, walks 0..3
loop:
    mov  r1, r3
    shli r1, 2
    li   r2, table
    add  r2, r1
    ldw  r2, [r2]
    jmpr r2

add_one:
    addi r0, 1
    jmp  next
add_two:
    addi r0, 2
    jmp  next
add_four:
    addi r0, 4
    jmp  next
add_eight:
    addi r0, 8
next:
    addi r3, 1
    cmpi r3, 4
    jc   loop            ; r3 < 4: dispatch the next state
    hlt

table:
    .word add_one, add_two, add_four, add_eight
