; Direct calls with explicit stack frames and image-data stores.  No
; indirect control flow: this is the corpus baseline the differential
; harness runs with zero resolved sites, and every stack/image access here
; is certifiable against the EA-MPU region.
    .entry main

main:
    subi sp, 8           ; two-slot frame
    movi r0, 21
    stw  r0, [sp]
    call double_it
    ldw  r0, [sp+4]      ; the result double_it stored
    li   r2, result
    stw  r0, [r2]        ; persist into image data
    addi sp, 8
    hlt

double_it:
    push r1
    ldw  r1, [sp+8]      ; caller slot: +4 return address, +8 argument
    add  r1, r1
    stw  r1, [sp+12]     ; caller's result slot
    pop  r1
    ret

result:
    .word 0
