; Jump table guarded by an explicit bounds check instead of a mask: the
; compare/branch refinement (`cmpi` + `jnc`) is what bounds the index on the
; dispatch path.  Out-of-range selectors take the reject path, so the `jmpr`
; resolves to the three handlers exactly.
    .entry main

main:
    cmpi r1, 3
    jnc  reject          ; selector >= 3: out of range
    shli r1, 2           ; in range: r1 is [0, 2] here
    li   r2, table
    add  r2, r1
    ldw  r2, [r2]
    jmpr r2

on_read:
    movi r0, 1
    jmp  done
on_write:
    movi r0, 2
    jmp  done
on_close:
    movi r0, 3
    jmp  done

reject:
    movi r0, -1
done:
    hlt

table:
    .word on_read, on_write, on_close
