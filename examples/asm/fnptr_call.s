; Computed goto through a function-pointer table: `callr` through a `.word`
; handler table.  The dataflow pass resolves the callee set, splices the
; edges into the call graph, and the stack pass bounds the worst-case depth
; through the indirect call.
    .entry main

main:
    movi r0, 40
    andi r1, 1           ; handler selector: 0 or 1
    shli r1, 2
    li   r2, handlers
    add  r2, r1
    ldw  r2, [r2]
    callr r2             ; resolved: inc_handler or dec_handler
    hlt

inc_handler:
    push r3
    movi r3, 2
    add  r0, r3
    pop  r3
    ret

dec_handler:
    push r3
    movi r3, 2
    sub  r0, r3
    pop  r3
    ret

handlers:
    .word inc_handler, dec_handler
