; Bounded dispatch through a `.word` jump table — the canonical computed-jump
; idiom.  The selector arrives in r1; `andi` clamps it to the table bounds, so
; the dataflow pass resolves the `jmpr` to exactly the four case labels
; (DF001) and `tytan-lint --strict` passes.
    .entry main

main:
    andi r1, 3           ; clamp the external selector to [0, 3]
    shli r1, 2           ; scale to a word index
    li   r2, table
    add  r2, r1
    ldw  r2, [r2]        ; fetch the case address
    jmpr r2

case0:
    movi r0, 10
    jmp  done
case1:
    movi r0, 11
    jmp  done
case2:
    movi r0, 12
    jmp  done
case3:
    movi r0, 13
done:
    hlt

table:
    .word case0, case1, case2, case3
