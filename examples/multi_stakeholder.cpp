// Multi-stakeholder ECU (paper §2): "automotive electronic control units
// often run software provided by the component supplier and the car
// manufacturer.  While the component supplier requires protecting its
// intellectual property and the integrity of its software components, the
// car manufacturer wants to ensure the correct and reliable operation of
// its tasks."
//
// Two mutually distrusting providers deploy secure tasks on one device:
//   * SUPPLIER ships a proprietary torque-limit algorithm holding a secret
//     calibration constant;
//   * OEM ships the dispatcher that feeds it pedal data over secure IPC and
//     actuates the engine with the result.
// The demo shows: (1) both run side by side with hard isolation — the OEM
// task provably cannot read the supplier's calibration secret; (2) each
// stakeholder independently attests *its own* task; (3) the supplier's
// sender-authenticated service rejects requests from an impostor task.
#include <cstdio>

#include "core/platform.h"

using namespace tytan;

namespace {

// Supplier task: on each message (tag in word0='T', pedal in word1) checks
// the sender, applies the secret calibration, replies... here it actuates
// the engine directly (word flow kept simple).  The calibration constant
// lives in its protected data.
constexpr std::string_view kSupplierTask = R"(
    .secure
    .stack 256
    .entry main
    .msg on_msg
main:
    movi r0, 8             ; wait for requests
    int  0x21
park:
    jmp  park
on_msg:
    li   r5, __tytan_mailbox
    ldw  r2, [r5+12]       ; pedal value
    li   r4, calibration
    ldw  r3, [r4]          ; SECRET torque limit
    cmp  r2, r3
    jlt  within_limit
    mov  r2, r3            ; clamp to the proprietary limit
within_limit:
    li   r4, 0x100400      ; engine actuator
    stw  r2, [r4]
    movi r0, 9             ; message done
    int  0x21
h:  jmp h
calibration:
    .word 55               ; the supplier's IP: the torque limit
)";

std::string oem_task(bool impostor) {
  // The OEM dispatcher samples the pedal and asks the supplier task to
  // actuate.  The "impostor" variant is a third party shipping a byte-wise
  // different binary that tries to use the same service.
  return std::string(R"(
    .secure
    .stack 256
    .entry main
main:
loop:
    li   r5, supplier_id
    ldw  r1, [r5]
    ldw  r2, [r5+4]
    li   r6, 0x100200      ; pedal
    ldw  r4, [r6]
    movi r3, 84            ; 'T'
    movi r0, 0             ; sync send
    int  0x22
    movi r0, 2
    movi r1, 3
    int  0x21
    jmp  loop
supplier_id:
    .word 0, 0
)") + (impostor ? "    .word 0xbadbad\n" : "");
}

void provision(core::Platform& platform, rtos::TaskHandle task, const std::string& src,
               const rtos::TaskIdentity& id) {
  auto probe = isa::assemble(src);
  const std::uint32_t addr =
      platform.scheduler().get(task)->region_base + probe->symbols.at("supplier_id");
  platform.machine().memory().write32(addr, load_le32(id.data()));
  platform.machine().memory().write32(addr + 4, load_le32(id.data() + 4));
}

}  // namespace

int main() {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  platform.pedal().set_value(90);  // driver demands more than the limit

  auto supplier =
      platform.load_task_source(kSupplierTask, {.name = "supplier", .priority = 4});
  const std::string oem_src = oem_task(false);
  auto oem = platform.load_task_source(oem_src, {.name = "oem", .priority = 3,
                                                 .auto_start = false});
  if (!supplier.is_ok() || !oem.is_ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  provision(platform, *oem, oem_src, platform.scheduler().get(*supplier)->identity);
  (void)platform.resume_task(*oem);

  std::printf("stakeholders deployed:\n  supplier id_t = %s\n  oem      id_t = %s\n",
              hex_encode(platform.scheduler().get(*supplier)->identity).c_str(),
              hex_encode(platform.scheduler().get(*oem)->identity).c_str());

  // 1. Cooperation through authenticated IPC: the engine value is clamped to
  //    the supplier's secret limit (55), not the raw pedal demand (90).
  platform.run_for(5'000'000);
  const auto& commands = platform.engine().commands();
  std::printf("\nengine commands: %zu; last = %u (pedal demanded 90, proprietary limit "
              "clamps to 55)\n",
              commands.size(), commands.empty() ? 0 : commands.back().value);

  // 2. Isolation: the OEM's execution identity cannot read the supplier's
  //    calibration constant (checked against the live EA-MPU).
  auto probe = isa::assemble(kSupplierTask);
  const rtos::Tcb* sup = platform.scheduler().get(*supplier);
  const rtos::Tcb* oemt = platform.scheduler().get(*oem);
  const std::uint32_t secret_addr = sup->region_base + probe->symbols.at("calibration");
  const bool oem_blocked =
      !platform.mpu().allows(oemt->region_base + 4, secret_addr, sim::Access::kRead);
  const bool os_blocked =
      !platform.mpu().allows(sim::kFwOsKernel + 4, secret_addr, sim::Access::kRead);
  std::printf("\nisolation: OEM read of supplier calibration -> %s; OS read -> %s\n",
              oem_blocked ? "DENIED" : "ALLOWED!?", os_blocked ? "DENIED" : "ALLOWED!?");

  // 3. Each stakeholder attests its own task with its own nonce.
  const auto ka = core::RemoteAttest::derive_ka(platform.key_register().raw_key());
  for (const auto& [name, handle] : {std::pair{"supplier", *supplier},
                                     std::pair{"oem", *oem}}) {
    const std::uint64_t nonce = platform.rng().next64();
    auto report = platform.remote_attest().attest_task(handle, nonce);
    const bool ok = report.is_ok() &&
                    core::RemoteAttest::verify(
                        ka, *report, nonce, platform.scheduler().get(handle)->identity);
    std::printf("attestation (%s): %s\n", name, ok ? "VERIFIED" : "FAILED");
  }

  // 4. Sender authentication: an impostor (different binary -> different
  //    id_S) sends the same request; the supplier can tell them apart by the
  //    proxy-written sender identity.  Here we show the platform-level fact:
  //    the impostor's identity differs and is what lands in the mailbox.
  const std::string impostor_src = oem_task(true);
  auto impostor = platform.load_task_source(impostor_src, {.name = "impostor",
                                                           .priority = 3,
                                                           .auto_start = false});
  if (impostor.is_ok()) {
    provision(platform, *impostor, impostor_src,
              platform.scheduler().get(*supplier)->identity);
    (void)platform.resume_task(*impostor);
    platform.run_for(3'000'000);
    auto id_lo = platform.machine().fw_read32(core::Rtm::kIdent, sup->mailbox);
    const std::uint32_t imp_lo =
        load_le32(platform.scheduler().get(*impostor)->identity.data());
    const std::uint32_t oem_lo = load_le32(oemt->identity.data());
    std::printf("\nsender authentication: mailbox sender id lo=%08x (impostor=%08x, "
                "oem=%08x) — the service can distinguish callers it never met\n",
                id_lo.is_ok() ? *id_lo : 0, imp_lo, oem_lo);
  }

  const bool ok = oem_blocked && os_blocked && !commands.empty() &&
                  commands.back().value == 55;
  std::printf("\n%s\n", ok ? "OK: mutual distrust enforced, cooperation preserved"
                           : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
