// Table 3 — Performance of restoring the context of a secure task (cycles).
//
// Paper: Branch 106 | Restore 254 | Overall 384 | Overhead 130
// (overhead relative to the FreeRTOS restore of 254 cycles).
//
// Method: run a secure spinner until it has been preempted and resumed at
// least once; read the Int Mux resume instrumentation.  Additionally measure
// the true end-to-end latency (resume request until the task executes its
// own next instruction, i.e. after the entry routine popped the frame and
// ireted) by stepping the machine manually.
#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::string_view kSpinner = R"(
    .secure
    .stack 256
    .entry main
main:
    addi r5, 1
    jmp  main
)";

struct EndToEnd {
  core::IntMux::ResumeStats stats;
  std::uint64_t end_to_end = 0;
};

EndToEnd measure_secure() {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  auto task = platform.load_task_source(kSpinner, {.name = "spin"});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  auto& machine = platform.machine();
  const rtos::Tcb* tcb = platform.scheduler().get(*task);

  // Step until a resume of the secure task completes: detect the cycle at
  // which the Int Mux resume stats change, then the cycle at which EIP is
  // back inside the task body (past the entry routine).
  EndToEnd out;
  std::uint64_t resume_begin = 0;
  std::uint64_t last_total = 0;
  for (int i = 0; i < 5'000'000; ++i) {
    const auto& rs = platform.int_mux().last_resume();
    if (rs.total != last_total) {
      last_total = rs.total;
      resume_begin = machine.cycles() - rs.total;
      out.stats = rs;
    }
    machine.step();
    if (resume_begin != 0 && machine.cpu().eip > tcb->entry + 64 &&
        machine.cpu().eip < tcb->region_base + tcb->region_size) {
      out.end_to_end = machine.cycles() - resume_begin;
      break;
    }
  }
  return out;
}

std::uint64_t measure_normal() {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  std::string source(kSpinner);
  source.erase(source.find("    .secure\n"), 12);
  auto task = platform.load_task_source(source, {.name = "spin"});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  platform.run_until(
      [&] { return platform.scheduler().get(*task)->activations > 2; }, 10'000'000);
  return platform.int_mux().last_resume().total;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table3_ctx_restore", options);
  const EndToEnd secure = measure_secure();
  const std::uint64_t normal = measure_normal();
  report.add("secure branch", secure.stats.branch, 106);
  report.add("secure restore", secure.stats.restore, 254);
  report.add("secure overall", secure.stats.total, 384);
  report.add("normal restore", normal, 254);

  bench::Table table("Table 3: restoring the context of a secure task (clock cycles)");
  table.columns({"Path", "Branch", "Restore", "Overall", "Overhead"});
  table.row({"TyTAN secure task (measured)", bench::num(secure.stats.branch),
             bench::num(secure.stats.restore), bench::num(secure.stats.total),
             bench::num(secure.stats.total > normal ? secure.stats.total - normal : 0)});
  table.row({"TyTAN secure task (paper)", "106", "254", "384", "130"});
  table.row({"FreeRTOS baseline (measured)", "-", bench::num(normal), bench::num(normal),
             "-"});
  table.row({"FreeRTOS baseline (paper)", "-", "254", "254", "-"});
  table.print();

  std::printf("\nEnd-to-end secure resume incl. guest entry-routine execution: %llu cycles\n",
              static_cast<unsigned long long>(secure.end_to_end));
  std::printf("Shape check: secure restore > secure branch: %s; secure overall > "
              "FreeRTOS restore: %s\n",
              secure.stats.restore > secure.stats.branch ? "yes" : "NO",
              secure.stats.total > normal ? "yes" : "NO");
  return 0;
}
