// Table 8 — Memory consumption of TyTAN's OS (no tasks loaded).
//
// Paper: FreeRTOS 215,617 bytes | TyTAN 249,943 bytes | Overhead 15.92 %.
//
// The firmware of this reproduction is host-implemented, so component code
// sizes are modeled constants carried by the boot manifest (DESIGN.md §2);
// the bench sums what secure boot actually verified and loaded.  The
// *secure-task* memory overhead (the auto-injected entry routine + mailbox,
// "secure tasks implement an entry routine ... which slightly increases the
// memory consumption", §6) is measured for real from the assembler output.
#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport json("table8_memory", options);
  Platform platform;
  auto report = platform.boot();
  TYTAN_CHECK(report.is_ok(), "boot failed");

  bench::Table table("Table 8: memory consumption of TyTAN's OS (bytes)");
  table.columns({"Component", "Size (bytes)"});
  table.row({"FreeRTOS baseline (paper-measured)", bench::num(core::kFreeRtosFootprint)});
  for (const auto& component : report->components) {
    table.row({"  + " + component.name, bench::num(component.footprint)});
  }
  const std::uint64_t tytan_total = core::kFreeRtosFootprint + report->trusted_bytes;
  json.add("tytan total bytes", tytan_total, 249'943);
  table.row({"TyTAN total (measured model)", bench::num(tytan_total)});
  table.row({"TyTAN total (paper)", "249,943"});
  const double overhead =
      100.0 * static_cast<double>(report->trusted_bytes) / core::kFreeRtosFootprint;
  table.row({"Overhead", bench::fixed(overhead) + " % (paper: 15.92 %)"});
  table.print();

  // Per-task overhead of the secure entry routine, measured from real
  // assembler output.
  constexpr std::string_view kBody = R"(
      .stack 256
      .entry main
  main:
      movi r0, 1
      int  0x21
      jmp  main
  )";
  auto normal = isa::assemble(kBody);
  auto secure = isa::assemble(std::string("    .secure\n") + std::string(kBody));
  TYTAN_CHECK(normal.is_ok() && secure.is_ok(), "assembly failed");

  bench::Table task_table("Secure-task binary overhead (measured from the tool chain)");
  task_table.columns({"Variant", "Image bytes"});
  task_table.row({"normal task", bench::num(normal->image.size())});
  task_table.row({"secure task (+entry routine, +mailbox)", bench::num(secure->image.size())});
  task_table.row({"overhead", bench::num(secure->image.size() - normal->image.size())});
  task_table.print();
  return 0;
}
