// Table 6 — Performance of configuring the EA-MPU depending on the position
// of the first free slot (18 slots in total; cycles).
//
// Paper: slot 1 -> find 76,  policy 824, write 225, overall 1,125
//        slot 2 -> find 95,  policy 824, write 225, overall 1,144
//        slot 18 -> find 399, policy 824, write 225, overall 1,448
//
// Method: on a bare EA-MPU + driver, pre-fill the first k-1 slots with dummy
// rules and configure one new rule through the driver; the driver's phase
// instrumentation gives the breakdown.
#include "bench_util.h"
#include "core/eampu_driver.h"

using namespace tytan;

namespace {

core::EaMpuDriver::ConfigStats measure(std::size_t first_free_position) {
  sim::Machine machine;
  hw::EaMpu mpu;
  core::EaMpuDriver driver(machine, mpu);
  // Occupy slots 0 .. first_free_position-2 with disjoint dummy rules.
  for (std::size_t i = 0; i + 1 < first_free_position; ++i) {
    const auto base = static_cast<std::uint32_t>(0x40000 + i * 0x1000);
    TYTAN_CHECK(mpu.write_slot(i, {.code_start = base,
                                   .code_size = 0x100,
                                   .data_start = base,
                                   .data_size = 0x100,
                                   .perms = hw::kPermRead})
                    .is_ok(),
                "dummy rule install failed");
  }
  auto slot = driver.configure({.code_start = 0x80000,
                                .code_size = 0x100,
                                .data_start = 0x80000,
                                .data_size = 0x100,
                                .perms = hw::kPermRead | hw::kPermWrite});
  TYTAN_CHECK(slot.is_ok(), slot.status().to_string());
  TYTAN_CHECK(*slot == first_free_position - 1, "unexpected slot chosen");
  return driver.last_config();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table6_eampu", options);
  struct PaperRow {
    std::size_t position;
    std::uint64_t find, policy, write, overall;
  };
  const PaperRow paper[] = {{1, 76, 824, 225, 1'125},
                            {2, 95, 824, 225, 1'144},
                            {18, 399, 824, 225, 1'448}};

  bench::Table table(
      "Table 6: configuring the EA-MPU vs position of first free slot (clock cycles)");
  table.columns({"Free slot position", "Finding free slot", "Policy check", "Writing rule",
                 "Overall"});
  for (std::size_t pos = 1; pos <= hw::EaMpu::kNumSlots; ++pos) {
    const auto stats = measure(pos);
    std::string label = bench::num(pos);
    for (const PaperRow& row : paper) {
      if (row.position == pos) {
        table.row({label + " (paper)", bench::num(row.find), bench::num(row.policy),
                   bench::num(row.write), bench::num(row.overall)});
        report.add("slot " + label + " overall", stats.total, row.overall);
      }
    }
    table.row({label, bench::num(stats.find), bench::num(stats.policy),
               bench::num(stats.write), bench::num(stats.total)});
  }
  table.print();

  const auto first = measure(1);
  const auto last = measure(hw::EaMpu::kNumSlots);
  std::printf("\nShape check: policy check constant (%llu == %llu): %s; find grows "
              "linearly with position: %s\n",
              static_cast<unsigned long long>(first.policy),
              static_cast<unsigned long long>(last.policy),
              first.policy == last.policy ? "yes" : "NO",
              last.find > first.find ? "yes" : "NO");
  return 0;
}
