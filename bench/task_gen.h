// Generators for synthetic task binaries with controlled image size and
// relocation count (the independent variables of Tables 4, 5, and 7).
#pragma once

#include <sstream>
#include <string>

#include "common/status.h"
#include "isa/assembler.h"

namespace tytan::bench {

/// Assemble a task whose *image* is exactly `image_bytes` long (rounded up to
/// the next word multiple — the assembler always emits word-aligned images)
/// and contains exactly `abs32_relocs` relocation records (ABS32 via
/// `.word label`).  `secure` controls the `.secure` attribute (and hence the
/// auto-injected entry routine).  The body parks in a yield loop.
inline isa::ObjectFile make_task(std::uint32_t image_bytes, unsigned abs32_relocs,
                                 bool secure) {
  image_bytes = (image_bytes + 3u) & ~3u;
  auto build = [&](std::uint32_t pad) {
    std::ostringstream os;
    if (secure) {
      os << "    .secure\n";
    }
    os << "    .stack 256\n    .entry main\nmain:\n";
    os << "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n";
    os << "anchor:\n    nop\n";
    for (unsigned i = 0; i < abs32_relocs; ++i) {
      os << "    .word anchor\n";
    }
    os << "    .space " << pad << "\n";
    auto object = isa::assemble(os.str());
    TYTAN_CHECK(object.is_ok(), object.status().to_string());
    return object.take();
  };
  const isa::ObjectFile probe = build(0);
  TYTAN_CHECK(probe.image.size() <= image_bytes,
              "requested image smaller than the task skeleton");
  isa::ObjectFile object =
      build(image_bytes - static_cast<std::uint32_t>(probe.image.size()));
  TYTAN_CHECK(object.image.size() == image_bytes, "generator size mismatch");
  TYTAN_CHECK(object.relocs.size() == abs32_relocs, "generator reloc mismatch");
  return object;
}

}  // namespace tytan::bench
