// Static-verifier throughput.
//
// Unlike the table benches, the analyzer runs on the *host* at load time — it
// charges zero simulated cycles (see LoaderGate.VerifierChargesNoMachineCycles)
// — so this bench reports host wall-clock throughput instead of cycle counts:
// how much binary the lint gate can verify per second, what each pass (CFG,
// relocation, dataflow, stack, MMIO) contributes to the total, and how the
// value-set dataflow cost scales with jump-table fan-out and site count.
//
// CI runs `--smoke --json=BENCH_analysis.json` and publishes the report
// (`paper` is 0 throughout: the source paper has no host-side numbers).
#include <algorithm>
#include <chrono>
#include <sstream>

#include "analysis/analyzer.h"
#include "bench_util.h"
#include "task_gen.h"

using namespace tytan;

namespace {

/// Median-of-reps wall-clock time for one analyze() call, in microseconds.
double time_us(const isa::ObjectFile& object, const analysis::Config& config,
               int reps) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const analysis::Report report = analysis::analyze(object, config);
    const auto t1 = std::chrono::steady_clock::now();
    TYTAN_CHECK(report.errors() == 0, "generated task must verify clean");
    samples.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string mb_per_s(std::uint32_t bytes, double us) {
  return bench::fixed(bytes / us, 1);  // bytes/us == MB/s
}

/// A task with `sites` independent jump-table dispatches of `cases` targets
/// each (`cases` must be a power of two: the index is an `andi` mask over an
/// unknown value, so the dataflow pass must enumerate the whole table).
isa::ObjectFile make_dispatch_task(unsigned sites, unsigned cases) {
  std::ostringstream os;
  os << "    .stack 256\n    .entry main\nmain:\n";
  for (unsigned s = 0; s < sites; ++s) {
    os << "    rdcyc r1\n";
    os << "    andi r1, " << (cases - 1) << "\n";
    os << "    shli r1, 2\n";
    os << "    li   r2, table" << s << "\n";
    os << "    add  r2, r1\n";
    os << "    ldw  r2, [r2]\n";
    os << "    jmpr r2\n";
    for (unsigned c = 0; c < cases; ++c) {
      os << "s" << s << "c" << c << ":\n    movi r4, " << c << "\n"
         << "    jmp  join" << s << "\n";
    }
    os << "join" << s << ":\n";
  }
  os << "park:\n    movi r0, 1\n    int 0x21\n    jmp park\n";
  for (unsigned s = 0; s < sites; ++s) {
    os << "table" << s << ":\n";
    for (unsigned c = 0; c < cases; ++c) {
      os << "    .word s" << s << "c" << c << "\n";
    }
  }
  auto object = isa::assemble(os.str());
  TYTAN_CHECK(object.is_ok(), object.status().to_string());
  return object.take();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport json("analysis", options);
  const int reps = options.smoke ? 3 : 7;
  const auto record = [&](std::string row, double us) {
    json.add(std::move(row), static_cast<std::uint64_t>(us + 0.5), /*paper=*/0);
  };

  bench::Table scaling("Static verifier throughput vs. image size");
  scaling.columns({"image", "relocs", "analyze (us)", "MB/s"});
  for (const std::uint32_t kib : {1u, 4u, 16u, 64u}) {
    if (options.smoke && kib > 16) {
      continue;
    }
    const std::uint32_t bytes = kib * 1'024;
    // Keep reloc density constant: one ABS32 record per 64 image bytes.
    const unsigned relocs = bytes / 64;
    const isa::ObjectFile object = bench::make_task(bytes, relocs, /*secure=*/false);
    const double us = time_us(object, {}, reps);
    scaling.row({std::to_string(kib) + " KiB", bench::num(relocs),
                 bench::fixed(us, 1), mb_per_s(bytes, us)});
    record("image." + std::to_string(kib) + "KiB.us", us);
  }
  scaling.print();

  bench::Table relocs("Relocation-pass sensitivity (16 KiB image)");
  relocs.columns({"relocs", "analyze (us)"});
  for (const unsigned n : {0u, 16u, 64u, 256u}) {
    const isa::ObjectFile object = bench::make_task(16'384, n, /*secure=*/false);
    const double us = time_us(object, {}, reps);
    relocs.row({bench::num(n), bench::fixed(us, 1)});
    record("relocs." + std::to_string(n) + ".us", us);
  }
  relocs.print();

  // Per-pass cost: run with a single pass enabled at a time.  CFG recovery is
  // a fixed prerequisite of the stack, MMIO, and dataflow passes, so their
  // rows include it; the "structural only" row is that shared baseline.
  const isa::ObjectFile object = bench::make_task(16'384, 256, /*secure=*/false);
  bench::Table passes("Per-pass cost (16 KiB image, 256 relocs)");
  passes.columns({"configuration", "analyze (us)"});
  const auto with = [](bool structural, bool reloc, bool dataflow, bool stack,
                       bool mmio) {
    analysis::Config config;
    config.structural = structural;
    config.relocations = reloc;
    config.dataflow = dataflow;
    config.stack = stack;
    config.mmio = mmio;
    return config;
  };
  const auto pass_row = [&](const char* name, const analysis::Config& config) {
    const double us = time_us(object, config, reps);
    passes.row({name, bench::fixed(us, 1)});
    record(std::string("pass.") + name + ".us", us);
  };
  pass_row("structural only", with(true, false, false, false, false));
  pass_row("+ relocations", with(true, true, false, false, false));
  pass_row("+ dataflow", with(true, false, true, false, false));
  pass_row("+ stack depth", with(true, false, false, true, false));
  pass_row("+ MMIO constprop", with(true, false, false, false, true));
  pass_row("all passes", with(true, true, true, true, true));
  passes.print();

  // Dataflow cost vs. indirect fan-out: every site must enumerate its whole
  // table (masked unknown index), so this scales both the value-set widths
  // and the resolve/re-recover iteration count.
  bench::Table dataflow("Dataflow pass vs. jump-table shape");
  dataflow.columns(
      {"sites x cases", "analyze (us)", "dataflow (us)", "rounds", "resolved"});
  for (const auto& [sites, cases] :
       std::vector<std::pair<unsigned, unsigned>>{
           {1, 4}, {1, 16}, {1, 64}, {4, 8}, {16, 8}}) {
    if (options.smoke && sites * cases > 64) {
      continue;
    }
    const isa::ObjectFile task = make_dispatch_task(sites, cases);
    const analysis::Analysis full = analysis::analyze_full(task);
    TYTAN_CHECK(full.report.errors() == 0, "dispatch task must verify clean");
    TYTAN_CHECK(full.dataflow.resolved.size() == sites,
                "every dispatch site must resolve");
    const double us = time_us(task, {}, reps);
    const std::string shape =
        std::to_string(sites) + " x " + std::to_string(cases);
    dataflow.row({shape, bench::fixed(us, 1),
                  bench::num(full.timings.dataflow_us),
                  bench::num(static_cast<unsigned>(full.dataflow_iterations)),
                  bench::num(full.dataflow.resolved.size())});
    record("dataflow." + std::to_string(sites) + "x" + std::to_string(cases) +
               ".us",
           us);
  }
  dataflow.print();
  return 0;
}
