// Static-verifier throughput.
//
// Unlike the table benches, the analyzer runs on the *host* at load time — it
// charges zero simulated cycles (see LoaderGate.VerifierChargesNoMachineCycles)
// — so this bench reports host wall-clock throughput instead of cycle counts:
// how much binary the lint gate can verify per second, and what each pass
// (CFG, relocation, stack, MMIO) contributes to the total.
#include <algorithm>
#include <chrono>

#include "analysis/analyzer.h"
#include "bench_util.h"
#include "task_gen.h"

using namespace tytan;

namespace {

/// Median-of-reps wall-clock time for one analyze() call, in microseconds.
double time_us(const isa::ObjectFile& object, const analysis::Config& config) {
  constexpr int kReps = 7;
  std::vector<double> samples;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const analysis::Report report = analysis::analyze(object, config);
    const auto t1 = std::chrono::steady_clock::now();
    TYTAN_CHECK(report.errors() == 0, "generated task must verify clean");
    samples.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string mb_per_s(std::uint32_t bytes, double us) {
  return bench::fixed(bytes / us, 1);  // bytes/us == MB/s
}

}  // namespace

int main() {
  bench::Table scaling("Static verifier throughput vs. image size");
  scaling.columns({"image", "relocs", "analyze (us)", "MB/s"});
  for (const std::uint32_t kib : {1u, 4u, 16u, 64u}) {
    const std::uint32_t bytes = kib * 1'024;
    // Keep reloc density constant: one ABS32 record per 64 image bytes.
    const unsigned relocs = bytes / 64;
    const isa::ObjectFile object = bench::make_task(bytes, relocs, /*secure=*/false);
    const double us = time_us(object, {});
    scaling.row({std::to_string(kib) + " KiB", bench::num(relocs),
                 bench::fixed(us, 1), mb_per_s(bytes, us)});
  }
  scaling.print();

  bench::Table relocs("Relocation-pass sensitivity (16 KiB image)");
  relocs.columns({"relocs", "analyze (us)"});
  for (const unsigned n : {0u, 16u, 64u, 256u}) {
    const isa::ObjectFile object = bench::make_task(16'384, n, /*secure=*/false);
    relocs.row({bench::num(n), bench::fixed(time_us(object, {}), 1)});
  }
  relocs.print();

  // Per-pass cost: run with a single pass enabled at a time.  CFG recovery is
  // a fixed prerequisite of the stack and MMIO passes, so their rows include
  // it; the "structural only" row is that shared baseline.
  const isa::ObjectFile object = bench::make_task(16'384, 256, /*secure=*/false);
  bench::Table passes("Per-pass cost (16 KiB image, 256 relocs)");
  passes.columns({"configuration", "analyze (us)"});
  const auto with = [](bool structural, bool reloc, bool stack, bool mmio) {
    analysis::Config config;
    config.structural = structural;
    config.relocations = reloc;
    config.stack = stack;
    config.mmio = mmio;
    return config;
  };
  passes.row({"structural only", bench::fixed(time_us(object, with(true, false, false, false)), 1)});
  passes.row({"+ relocations", bench::fixed(time_us(object, with(true, true, false, false)), 1)});
  passes.row({"+ stack depth", bench::fixed(time_us(object, with(true, false, true, false)), 1)});
  passes.row({"+ MMIO constprop", bench::fixed(time_us(object, with(true, false, false, true)), 1)});
  passes.row({"all passes", bench::fixed(time_us(object, with(true, true, true, true)), 1)});
  passes.print();
  return 0;
}
