// Snapshot cost and fork-based fuzzing throughput (host wall time).
//
// These are NOT paper numbers — the snapshot subsystem is infrastructure the
// paper does not describe.  This bench pins two properties CI gates on:
//   * save/restore/clone are cheap enough to use per-input (microseconds,
//     not the milliseconds a full boot costs), and
//   * fork-mode fuzzing (restore a pristine post-boot snapshot per input)
//     beats reboot-per-input by >= 10x execs/sec — the acceptance bar for
//     the fork-based loader fuzzing workflow (tools/tytan-fuzz).
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "core/platform.h"
#include "isa/assembler.h"
#include "tbf/tbf.h"

using namespace tytan;

namespace {

constexpr std::string_view kCounterTask = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r2, counter
    ldw  r3, [r2]
    addi r3, 1
    stw  r3, [r2]
    movi r0, 1
    int  0x21
    jmp  main
counter:
    .word 0
)";

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

/// xorshift64 — same deterministic mutator tytan-fuzz uses.
struct Rng {
  std::uint64_t state = 0x6675'7a7a'6265'6e63ull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

ByteVec mutate(const ByteVec& seed, Rng& rng) {
  ByteVec input = seed;
  const std::uint64_t mutations = 1 + rng.next() % 8;
  for (std::uint64_t m = 0; m < mutations; ++m) {
    input[rng.next() % input.size()] = static_cast<std::uint8_t>(rng.next());
  }
  return input;
}

/// One fuzz exec against an already-pristine platform: parse, maybe load,
/// maybe run a small guest budget.  Loader fuzzing is parse/reject-heavy —
/// most mutants die in tbf::read or the lint gate — so the guest budget is
/// small; the per-input fixed cost (reboot vs restore) dominates, which is
/// exactly what this bench compares.
void fuzz_one(core::Platform& platform, const ByteVec& input) {
  auto object = tbf::read(input);
  if (!object.is_ok()) {
    return;
  }
  auto task = platform.load_task(object.take(), {.name = "fuzz"});
  if (task.is_ok()) {
    platform.run_for(5'000);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("snapshot", options);

  const int snap_iters = options.smoke ? 20 : 200;
  const std::uint64_t fuzz_execs = options.smoke ? 40 : 400;

  core::Platform platform;
  if (!platform.boot().is_ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  auto counter = platform.load_task_source(kCounterTask, {.name = "counter"});
  if (!counter.is_ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  platform.run_for(500'000);

  // -- save / restore / clone cost --------------------------------------------
  auto first = platform.save();
  if (!first.is_ok()) {
    std::fprintf(stderr, "save failed: %s\n", first.status().to_string().c_str());
    return 1;
  }
  const std::uint64_t snapshot_bytes = first->serialize().size();

  auto t0 = Clock::now();
  for (int i = 0; i < snap_iters; ++i) {
    auto snapshot = platform.save();
    if (!snapshot.is_ok()) {
      return 1;
    }
  }
  const std::uint64_t save_us = elapsed_us(t0) / snap_iters;

  t0 = Clock::now();
  for (int i = 0; i < snap_iters; ++i) {
    if (!platform.restore(*first).is_ok()) {
      return 1;
    }
  }
  const std::uint64_t restore_us = elapsed_us(t0) / snap_iters;

  t0 = Clock::now();
  for (int i = 0; i < snap_iters / 4 + 1; ++i) {
    auto clone = platform.clone();
    if (!clone.is_ok()) {
      return 1;
    }
  }
  const std::uint64_t clone_us = elapsed_us(t0) / (snap_iters / 4 + 1);

  // -- fork-mode vs reboot-per-input fuzzing throughput -----------------------
  auto seed_object = isa::assemble(kCounterTask);
  if (!seed_object.is_ok()) {
    return 1;
  }
  const ByteVec seed_image = tbf::write(*seed_object);

  core::Platform fuzzer;
  if (!fuzzer.boot().is_ok()) {
    return 1;
  }
  auto pristine = fuzzer.save();
  if (!pristine.is_ok()) {
    return 1;
  }

  Rng fork_rng;
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < fuzz_execs; ++i) {
    if (!fuzzer.restore(*pristine).is_ok()) {
      return 1;
    }
    fuzz_one(fuzzer, mutate(seed_image, fork_rng));
  }
  const std::uint64_t fork_total_us = elapsed_us(t0);

  Rng reboot_rng;  // identical input stream for a fair comparison
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < fuzz_execs; ++i) {
    core::Platform fresh;
    if (!fresh.boot().is_ok()) {
      return 1;
    }
    fuzz_one(fresh, mutate(seed_image, reboot_rng));
  }
  const std::uint64_t reboot_total_us = elapsed_us(t0);

  const std::uint64_t fork_eps =
      fork_total_us == 0 ? 0 : fuzz_execs * 1'000'000 / fork_total_us;
  const std::uint64_t reboot_eps =
      reboot_total_us == 0 ? 0 : fuzz_execs * 1'000'000 / reboot_total_us;
  const std::uint64_t speedup = reboot_eps == 0 ? 0 : (fork_eps * 10) / reboot_eps;

  bench::Table table("machine snapshots (host wall time; no paper equivalent)");
  table.columns({"operation", "measured"})
      .row({"save", std::to_string(save_us) + " us"})
      .row({"restore", std::to_string(restore_us) + " us"})
      .row({"clone", std::to_string(clone_us) + " us"})
      .row({"snapshot size", std::to_string(snapshot_bytes) + " bytes"})
      .row({"fuzz fork mode", std::to_string(fork_eps) + " execs/s"})
      .row({"fuzz reboot mode", std::to_string(reboot_eps) + " execs/s"})
      .row({"fork speedup", std::to_string(speedup / 10) + "." +
                                std::to_string(speedup % 10) + "x"});
  table.print();

  report.add("save_us", save_us, 0);
  report.add("restore_us", restore_us, 0);
  report.add("clone_us", clone_us, 0);
  report.add("snapshot_bytes", snapshot_bytes, 0);
  report.add("fork_execs_per_sec", fork_eps, 0);
  report.add("reboot_execs_per_sec", reboot_eps, 0);
  report.add("fork_speedup_x10", speedup, 0);

  if (speedup < 100) {  // speedup is scaled by 10: 100 == 10.0x
    std::fprintf(stderr,
                 "FAIL: fork-mode fuzzing is only %llu.%llux faster than "
                 "reboot-per-input (acceptance bar: 10x)\n",
                 static_cast<unsigned long long>(speedup / 10),
                 static_cast<unsigned long long>(speedup % 10));
    return 1;
  }
  return 0;
}
