// Fleet throughput bench — host-side scaling of the multi-device runner.
//
// Unlike the table benches, this measures *host* throughput (devices/sec and
// attestations/sec versus worker-thread count), not simulated cycles: the
// paper has no fleet-scale numbers, so every row's paper value is 0.  The
// simulated side stays deterministic — the bench asserts that total simulated
// cycles and the verified count are identical at every thread count, which is
// the same invariant tests/test_fleet.cc pins down.
#include <thread>

#include "bench_util.h"
#include "fleet/verifier_workload.h"

using namespace tytan;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("fleet", options);

  const std::size_t devices = options.smoke ? 4 : 16;
  const std::uint64_t cycles = options.smoke ? 200'000 : 1'000'000;
  std::vector<std::size_t> thread_counts = {1, 2};
  if (!options.smoke) {
    const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    if (hw >= 4) thread_counts.push_back(4);
    if (hw >= 8) thread_counts.push_back(8);
  }

  bench::Table table("Fleet throughput (" + bench::num(devices) + " devices, " +
                     bench::num(cycles) + " cycles each)");
  table.columns({"threads", "total s", "devices/s", "attests/s", "verified",
                 "sim cycles"});

  std::uint64_t baseline_cycles = 0;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    fleet::WorkloadConfig config;
    config.fleet.device_count = devices;
    config.fleet.threads = threads;
    config.cycles = cycles;
    const fleet::WorkloadResult result = fleet::run_verifier_workload(config);
    if (!result.status.is_ok()) {
      std::fprintf(stderr, "bench_fleet: workload failed: %s\n",
                   result.status.to_string().c_str());
      return 1;
    }
    if (baseline_cycles == 0) {
      baseline_cycles = result.totals.cycles;
    } else if (result.totals.cycles != baseline_cycles) {
      deterministic = false;
    }
    table.row({bench::num(threads), bench::fixed(result.total_seconds, 3),
               bench::fixed(result.devices_per_sec(), 1),
               bench::fixed(result.attests_per_sec(), 1),
               bench::num(result.verified) + "/" + bench::num(result.devices),
               bench::num(result.totals.cycles)});
    const std::string prefix = "t" + bench::num(threads);
    report.add(prefix + ".attests_per_sec",
               static_cast<std::uint64_t>(result.attests_per_sec()), 0);
    report.add(prefix + ".devices_per_sec",
               static_cast<std::uint64_t>(result.devices_per_sec()), 0);
    report.add(prefix + ".verified", result.verified, devices);
    report.add(prefix + ".sim_cycles", result.totals.cycles, 0);
  }
  table.print();

  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_fleet: simulated cycle totals differ across thread "
                 "counts — determinism broken\n");
    return 1;
  }
  std::printf("\nsimulated work identical at every thread count "
              "(%llu total cycles)\n",
              static_cast<unsigned long long>(baseline_cycles));
  return 0;
}
