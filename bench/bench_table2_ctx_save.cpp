// Table 2 — Performance of saving the context of a secure task (cycles).
//
// Paper: Store 38 | Wipe 16 | Branch 41 | Overall 95 | Overhead 57
// (overhead is relative to the unmodified-FreeRTOS save of 38 cycles).
//
// Method: boot the platform, run a secure spinner task, and read the Int Mux
// save-path instrumentation at the first tick interrupt that lands on it;
// then repeat with a normal task for the FreeRTOS baseline.
#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::string_view kSpinner = R"(
    .secure
    .stack 256
    .entry main
main:
    addi r5, 1
    jmp  main
)";

core::IntMux::SaveStats measure(bool secure) {
  Platform platform;
  auto boot = platform.boot();
  TYTAN_CHECK(boot.is_ok(), "boot failed");
  std::string source(kSpinner);
  if (!secure) {
    source.erase(source.find("    .secure\n"), 12);
  }
  auto task = platform.load_task_source(source, {.name = secure ? "secure" : "normal"});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  platform.run_until(
      [&] {
        return platform.int_mux().last_save().store > 0 &&
               platform.int_mux().last_save().secure == secure;
      },
      10'000'000);
  return platform.int_mux().last_save();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table2_ctx_save", options);
  const auto secure = measure(true);
  const auto normal = measure(false);
  report.add("secure store", secure.store, 38);
  report.add("secure wipe", secure.wipe, 16);
  report.add("secure branch", secure.branch, 41);
  report.add("secure overall", secure.total, 95);
  report.add("normal store", normal.store, 38);

  bench::Table table("Table 2: saving the context of a secure task (clock cycles)");
  table.columns({"Path", "Store context", "Wipe registers", "Branch", "Overall", "Overhead"});
  table.row({"TyTAN secure task (measured)", bench::num(secure.store),
             bench::num(secure.wipe), bench::num(secure.branch), bench::num(secure.total),
             bench::num(secure.total - normal.store)});
  table.row({"TyTAN secure task (paper)", "38", "16", "41", "95", "57"});
  table.row({"FreeRTOS baseline (measured)", bench::num(normal.store), "-", "-",
             bench::num(normal.store), "-"});
  table.row({"FreeRTOS baseline (paper)", "38", "-", "-", "38", "-"});
  table.print();

  std::printf("\nShape check: store+wipe+branch == overall: %s; overhead dominated by "
              "wipe+branch: %s\n",
              secure.store + secure.wipe + secure.branch == secure.total ? "yes" : "NO",
              secure.total > normal.store ? "yes" : "NO");
  return 0;
}
