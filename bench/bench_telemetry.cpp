// Telemetry & profiler overhead bench — the cost of observing a fleet.
//
// The observability contract is "free when off, cheap when on, and never a
// single simulated cycle either way".  This bench measures the host-side
// price of (a) fleet telemetry snapshots + anomaly rules and (b) the guest-PC
// sampling profiler, and *asserts* the simulated-cycle invariant: the same
// workload must execute an identical number of simulated cycles with the
// feature on and off.  The paper has no telemetry numbers, so every row's
// paper value is 0.
#include <chrono>

#include "bench_util.h"
#include "core/platform.h"
#include "fleet/verifier_workload.h"

using namespace tytan;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("telemetry", options);

  const std::size_t devices = options.smoke ? 4 : 8;
  const std::uint64_t cycles = options.smoke ? 200'000 : 1'000'000;

  // ---- fleet telemetry: off vs on ---------------------------------------
  bench::Table fleet_table("Fleet telemetry overhead (" + bench::num(devices) +
                           " devices, " + bench::num(cycles) + " cycles each)");
  fleet_table.columns({"telemetry", "total s", "snapshots", "anomalies",
                       "sim cycles"});

  std::uint64_t fleet_cycles_off = 0;
  std::uint64_t fleet_cycles_on = 0;
  for (const bool enabled : {false, true}) {
    fleet::WorkloadConfig config;
    config.fleet.device_count = devices;
    config.fleet.threads = 2;
    config.fleet.telemetry.enabled = enabled;
    config.cycles = cycles;
    fleet::Fleet fleet(config.fleet);
    const fleet::WorkloadResult result = fleet::run_verifier_workload(fleet, config);
    if (!result.status.is_ok()) {
      std::fprintf(stderr, "bench_telemetry: workload failed: %s\n",
                   result.status.to_string().c_str());
      return 1;
    }
    (enabled ? fleet_cycles_on : fleet_cycles_off) = result.totals.cycles;
    const std::size_t snapshots = fleet.telemetry().snapshots().size();
    const std::size_t anomalies = fleet.telemetry().anomalies().size();
    fleet_table.row({enabled ? "on" : "off", bench::fixed(result.total_seconds, 3),
                     bench::num(snapshots), bench::num(anomalies),
                     bench::num(result.totals.cycles)});
    const std::string prefix = enabled ? "telemetry_on" : "telemetry_off";
    report.add(prefix + ".total_ms",
               static_cast<std::uint64_t>(result.total_seconds * 1000.0), 0);
    report.add(prefix + ".snapshots", snapshots, 0);
    report.add(prefix + ".sim_cycles", result.totals.cycles, 0);
  }
  fleet_table.print();

  if (fleet_cycles_off != fleet_cycles_on) {
    std::fprintf(stderr,
                 "bench_telemetry: telemetry changed simulated cycles "
                 "(%llu off vs %llu on) — cost invariant broken\n",
                 static_cast<unsigned long long>(fleet_cycles_off),
                 static_cast<unsigned long long>(fleet_cycles_on));
    return 1;
  }

  // ---- attestation spans: off vs on -------------------------------------
  // Same contract as telemetry: spans may cost host time, never a simulated
  // cycle.  The workload attests twice so retry/round logic is exercised.
  bench::Table span_table("Attestation span overhead (" + bench::num(devices) +
                          " devices, " + bench::num(cycles) + " cycles each)");
  span_table.columns({"spans", "total s", "spans recorded", "sim cycles"});

  std::uint64_t span_cycles_off = 0;
  std::uint64_t span_cycles_on = 0;
  double span_seconds_off = 0.0;
  double span_seconds_on = 0.0;
  for (const bool enabled : {false, true}) {
    fleet::WorkloadConfig config;
    config.fleet.device_count = devices;
    config.fleet.threads = 2;
    config.fleet.spans = enabled;
    config.cycles = cycles;
    config.attest_sweeps = 2;
    fleet::Fleet fleet(config.fleet);
    const fleet::WorkloadResult result = fleet::run_verifier_workload(fleet, config);
    if (!result.status.is_ok()) {
      std::fprintf(stderr, "bench_telemetry: span workload failed: %s\n",
                   result.status.to_string().c_str());
      return 1;
    }
    (enabled ? span_cycles_on : span_cycles_off) = result.totals.cycles;
    (enabled ? span_seconds_on : span_seconds_off) = result.total_seconds;
    std::size_t spans = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      spans += fleet.device(i).platform().machine().obs().spans().size();
    }
    span_table.row({enabled ? "on" : "off", bench::fixed(result.total_seconds, 3),
                    bench::num(spans), bench::num(result.totals.cycles)});
    const std::string prefix = enabled ? "spans_on" : "spans_off";
    report.add(prefix + ".total_ms",
               static_cast<std::uint64_t>(result.total_seconds * 1000.0), 0);
    report.add(prefix + ".spans", spans, 0);
    report.add(prefix + ".sim_cycles", result.totals.cycles, 0);
    if (enabled && spans == 0) {
      std::fprintf(stderr, "bench_telemetry: spans enabled but none recorded\n");
      return 1;
    }
  }
  span_table.print();

  if (span_cycles_off != span_cycles_on) {
    std::fprintf(stderr,
                 "bench_telemetry: spans changed simulated cycles "
                 "(%llu off vs %llu on) — cost invariant broken\n",
                 static_cast<unsigned long long>(span_cycles_off),
                 static_cast<unsigned long long>(span_cycles_on));
    return 1;
  }
  if (span_seconds_off > 0.0) {
    std::printf("span host-time overhead: %+.1f%%\n",
                100.0 * (span_seconds_on - span_seconds_off) / span_seconds_off);
  }

  // ---- sampling profiler: off vs on -------------------------------------
  const std::uint64_t profile_cycles = options.smoke ? 500'000 : 4'000'000;
  bench::Table prof_table("Sampling profiler overhead (" +
                          bench::num(profile_cycles) + " cycles, interval " +
                          bench::num(obs::SampleProfiler::kDefaultInterval) + ")");
  prof_table.columns({"profiler", "host s", "samples", "sim cycles", "instr"});

  std::uint64_t prof_cycles_off = 0;
  std::uint64_t prof_cycles_on = 0;
  for (const bool enabled : {false, true}) {
    core::Platform platform;
    if (enabled) {
      platform.machine().enable_profiler(obs::SampleProfiler::kDefaultInterval);
    }
    if (!platform.boot().is_ok()) {
      std::fprintf(stderr, "bench_telemetry: boot failed\n");
      return 1;
    }
    auto task = platform.load_task_source(fleet::default_task_source(),
                                          {.name = "heartbeat"});
    if (!task.is_ok()) {
      std::fprintf(stderr, "bench_telemetry: load failed: %s\n",
                   task.status().to_string().c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    platform.run_for(profile_cycles);
    const double host_seconds = seconds_since(start);
    const std::uint64_t sim_cycles = platform.machine().cycles();
    (enabled ? prof_cycles_on : prof_cycles_off) = sim_cycles;
    const std::uint64_t samples =
        enabled ? platform.machine().profiler()->taken() : 0;
    prof_table.row({enabled ? "on" : "off", bench::fixed(host_seconds, 3),
                    bench::num(samples), bench::num(sim_cycles),
                    bench::num(platform.machine().instructions_executed())});
    const std::string prefix = enabled ? "profiler_on" : "profiler_off";
    report.add(prefix + ".host_ms",
               static_cast<std::uint64_t>(host_seconds * 1000.0), 0);
    report.add(prefix + ".samples", samples, 0);
    report.add(prefix + ".sim_cycles", sim_cycles, 0);
  }
  prof_table.print();

  if (prof_cycles_off != prof_cycles_on) {
    std::fprintf(stderr,
                 "bench_telemetry: profiler changed simulated cycles "
                 "(%llu off vs %llu on) — cost invariant broken\n",
                 static_cast<unsigned long long>(prof_cycles_off),
                 static_cast<unsigned long long>(prof_cycles_on));
    return 1;
  }

  std::printf("\nsimulated work identical with observability on and off "
              "(fleet %llu cycles, single device %llu cycles)\n",
              static_cast<unsigned long long>(fleet_cycles_on),
              static_cast<unsigned long long>(prof_cycles_on));
  return 0;
}
