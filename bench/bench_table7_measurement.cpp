// Table 7 — Performance of measuring a task, as a function of (a) its memory
// size in hash blocks and (b) the number of addresses changed by relocation.
//
// Paper:  1 block -> 8,261   |  # addresses 0 -> 114
//         2 blocks -> 12,200 |               1 -> 680
//         4 blocks -> 20,078 |               2 -> 1,188
//         8 blocks -> 35,790 |               4 -> 2,187
// Model: T ~= 4,300 + b*3,900 + 100 + a*500.
//
// Method: load tasks sized for exactly b SHA-1 compression blocks (resp.
// with exactly a relocation records), re-measure through the RTM, and read
// its phase instrumentation.
#include "bench_util.h"
#include "core/platform.h"
#include "crypto/sha1.h"
#include "task_gen.h"

using namespace tytan;
using core::Platform;

namespace {

/// Largest word-multiple image size whose padded SHA-1 stream is exactly
/// `blocks` blocks (the assembler word-aligns images, so odd sizes are not
/// producible): 64*b - padding(1) - length(8), rounded down to a word.
std::uint32_t bytes_for_blocks(std::uint32_t blocks) {
  return blocks * 64 - 12;
}

core::Rtm::MeasureStats measure(std::uint32_t image_bytes, unsigned relocs) {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  isa::ObjectFile object = bench::make_task(image_bytes, relocs, /*secure=*/false);
  const auto reloc_records = object.relocs;
  auto task = platform.load_task(std::move(object), {.name = "t", .auto_start = false});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  // Re-measure explicitly so the stats cover measurement only.
  auto digest =
      platform.rtm().measure_now(*platform.scheduler().get(*task), reloc_records);
  TYTAN_CHECK(digest.is_ok(), digest.status().to_string());
  return platform.rtm().last_measure();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table7_measurement", options);
  {
    bench::Table table("Table 7a: measurement vs memory size (clock cycles)");
    table.columns({"Memory size", "Runtime (measured)", "Runtime (paper)", "Model 4300+b*3900+100"});
    const std::uint32_t blocks[] = {1, 2, 4, 8, 16, 64};
    const std::uint64_t paper[] = {8'261, 12'200, 20'078, 35'790, 0, 0};
    // Smoke mode skips the large images; the paper rows all fit in 8 blocks.
    const std::size_t block_count = options.smoke ? 4 : std::size(blocks);
    for (std::size_t i = 0; i < block_count; ++i) {
      const auto stats = measure(bytes_for_blocks(blocks[i]), 0);
      TYTAN_CHECK(stats.blocks == blocks[i], "block count mismatch");
      const std::uint64_t runtime = stats.setup + stats.hash + stats.finalize;
      table.row({bench::num(blocks[i]) + " block(s)", bench::num(runtime),
                 paper[i] != 0 ? bench::num(paper[i]) : "-",
                 bench::num(4'300 + 3'900ull * blocks[i] + 100)});
      if (paper[i] != 0) {
        report.add(bench::num(blocks[i]) + " blocks", runtime, paper[i]);
      }
    }
    table.print();
  }
  {
    bench::Table table("Table 7b: measurement vs relocated addresses (clock cycles)");
    table.columns({"# of addresses", "Runtime (measured)", "Runtime (paper)", "Model 114+a*500"});
    const unsigned addrs[] = {0, 1, 2, 4, 8, 16};
    const std::uint64_t paper[] = {114, 680, 1'188, 2'187, 0, 0};
    const std::size_t addr_count = options.smoke ? 4 : std::size(addrs);
    for (std::size_t i = 0; i < addr_count; ++i) {
      const auto stats = measure(bytes_for_blocks(4), addrs[i]);
      table.row({bench::num(addrs[i]), bench::num(stats.reloc),
                 paper[i] != 0 || addrs[i] == 0 ? bench::num(paper[i]) : "-",
                 bench::num(114 + 500ull * addrs[i])});
      if (paper[i] != 0 || addrs[i] == 0) {
        report.add(bench::num(addrs[i]) + " addresses", stats.reloc, paper[i]);
      }
    }
    table.print();
  }

  std::printf("\nShape check: runtime linear in blocks and in addresses; every quantum "
              "bounded (the RTM stays interruptible regardless of task size).\n");
  return 0;
}
