// Secure IPC performance (paper §6, in-text): the IPC proxy runs in 1,208
// cycles and the receiver's entry routine in 116 cycles — 1,324 overall.
//
// Method: two secure tasks; the sender issues INT kVecIpc with a synchronous
// register message; the proxy's instrumentation gives the breakdown.  Both
// sync and async deliveries are reported, plus the shared-memory grant cost.
#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::string_view kReceiver = R"(
    .secure
    .stack 256
    .entry main
    .msg on_msg
main:
    movi r0, 8
    int  0x21
hang:
    jmp  hang
on_msg:
    movi r0, 9
    int  0x21
hang2:
    jmp  hang2
)";

std::string sender_source(unsigned op) {
  return R"(
    .secure
    .stack 256
    .entry main
main:
    li   r5, idr
    ldw  r1, [r5]
    ldw  r2, [r5+4]
    movi r0, )" + std::to_string(op) + R"(
    movi r3, 0x41
    movi r4, 0x42
    movi r5, 0x43
    movi r6, 0x44
    int  0x22
park:
    movi r0, 1
    int  0x21
    jmp  park
idr:
    .word 0, 0
)";
}

core::IpcProxy::IpcStats run_ipc(unsigned op) {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  auto receiver = platform.load_task_source(kReceiver, {.name = "recv", .priority = 2});
  TYTAN_CHECK(receiver.is_ok(), receiver.status().to_string());
  auto sender = platform.load_task_source(sender_source(op),
                                          {.name = "send", .priority = 2,
                                           .auto_start = false});
  TYTAN_CHECK(sender.is_ok(), sender.status().to_string());
  // Provision id_R into the sender's data section.
  const rtos::Tcb* s = platform.scheduler().get(*sender);
  const rtos::Tcb* r = platform.scheduler().get(*receiver);
  auto probe = isa::assemble(sender_source(op));
  const std::uint32_t idr = s->region_base + probe->symbols.at("idr");
  platform.machine().memory().write32(idr, load_le32(r->identity.data()));
  platform.machine().memory().write32(idr + 4, load_le32(r->identity.data() + 4));
  TYTAN_CHECK(platform.resume_task(*sender).is_ok(), "resume failed");
  platform.run_until([&] { return platform.ipc_proxy().last_ipc().delivered; },
                     30'000'000);
  return platform.ipc_proxy().last_ipc();
}

}  // namespace

int main() {
  const auto sync = run_ipc(core::kIpcSendSync);
  const auto async = run_ipc(core::kIpcSendAsync);

  bench::Table table("Secure IPC performance (clock cycles; paper reports in-text)");
  table.columns({"Mechanism", "IPC proxy", "Receiver entry routine", "Overall"});
  table.row({"sync send (measured)", bench::num(sync.proxy), bench::num(sync.entry),
             bench::num(sync.total)});
  table.row({"paper", "1,208", "116", "1,324"});
  table.row({"async send (measured)", bench::num(async.proxy), "deferred",
             bench::num(async.total)});
  table.print();

  std::printf("\nShape check: proxy cost dominates the receiver entry (paper 1208 vs "
              "116): %s\n",
              sync.proxy > 4 * sync.entry ? "yes" : "NO");
  return 0;
}
