// Fault-injection overhead & recovery-latency bench.
//
// The fault engine's contract mirrors the observability one: with no plan
// active it must not cost a single simulated cycle (the hook sites collapse
// to one null compare), and with a dormant plan installed the decision
// checks are host-side only.  This bench *asserts* that invariant — the same
// workload must execute an identical number of simulated cycles with no
// engine, with a dormant plan, and without the fault library linked at all —
// and then measures the recovery paths the plan classes pair with: watchdog
// restart latency for a stalled task and the secure-storage poison/re-store
// roundtrip.  The paper has no fault numbers, so every row's paper value is 0.
#include <chrono>

#include "bench_util.h"
#include "core/platform.h"
#include "fault/fault.h"
#include "fleet/verifier_workload.h"

using namespace tytan;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

fault::FaultPlan parse_plan(const char* text) {
  auto plan = fault::FaultPlan::parse(text);
  if (!plan.is_ok()) {
    std::fprintf(stderr, "bench_fault: bad plan '%s': %s\n", text,
                 plan.status().to_string().c_str());
    std::exit(1);
  }
  return plan.take();
}

rtos::TaskIdentity make_id(std::uint8_t seed) {
  rtos::TaskIdentity id{};
  id.fill(seed);
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("fault", options);

  // ---- dormant-engine overhead: the zero-cost invariant ------------------
  const std::uint64_t cycles = options.smoke ? 500'000 : 4'000'000;
  bench::Table idle_table("Fault engine overhead (" + bench::num(cycles) +
                          " cycles, heartbeat task)");
  idle_table.columns({"engine", "host s", "sim cycles", "instr"});

  std::uint64_t cycles_off = 0;
  std::uint64_t cycles_dormant = 0;
  for (const bool dormant : {false, true}) {
    core::Platform::Config config;
    if (dormant) {
      // A valid plan whose clauses can never fire on this workload: the
      // storage slot is never touched and the cycle trigger is beyond the
      // run.  Hook sites still consult the engine on every decision.
      config.fault_plan = parse_plan("storage-corrupt@cycle=999999999999:slot9");
    }
    core::Platform platform(config);
    if (!platform.boot().is_ok()) {
      std::fprintf(stderr, "bench_fault: boot failed\n");
      return 1;
    }
    auto task = platform.load_task_source(fleet::default_task_source(),
                                          {.name = "heartbeat"});
    if (!task.is_ok()) {
      std::fprintf(stderr, "bench_fault: load failed: %s\n",
                   task.status().to_string().c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    platform.run_for(cycles);
    const double host_seconds = seconds_since(start);
    const std::uint64_t sim_cycles = platform.machine().cycles();
    (dormant ? cycles_dormant : cycles_off) = sim_cycles;
    idle_table.row({dormant ? "dormant plan" : "none",
                    bench::fixed(host_seconds, 3), bench::num(sim_cycles),
                    bench::num(platform.machine().instructions_executed())});
    const std::string prefix = dormant ? "engine_dormant" : "engine_off";
    report.add(prefix + ".host_ms",
               static_cast<std::uint64_t>(host_seconds * 1000.0), 0);
    report.add(prefix + ".sim_cycles", sim_cycles, 0);
    if (dormant && platform.fault_engine()->injected_total() != 0) {
      std::fprintf(stderr, "bench_fault: dormant plan fired\n");
      return 1;
    }
  }
  idle_table.print();

  if (cycles_off != cycles_dormant) {
    std::fprintf(stderr,
                 "bench_fault: dormant fault engine changed simulated cycles "
                 "(%llu off vs %llu dormant) — cost invariant broken\n",
                 static_cast<unsigned long long>(cycles_off),
                 static_cast<unsigned long long>(cycles_dormant));
    return 1;
  }

  // ---- watchdog restart latency ------------------------------------------
  bench::Table wd_table("Watchdog recovery (task-stall:heartbeat)");
  wd_table.columns({"event", "cycle"});
  {
    core::Platform::Config config;
    config.fault_plan = parse_plan("task-stall:heartbeat");
    core::Platform platform(config);
    platform.machine().obs().enable();
    if (!platform.boot().is_ok()) {
      std::fprintf(stderr, "bench_fault: boot failed\n");
      return 1;
    }
    auto task = platform.load_task_source(fleet::default_task_source(),
                                          {.name = "heartbeat"});
    if (!task.is_ok()) {
      std::fprintf(stderr, "bench_fault: load failed: %s\n",
                   task.status().to_string().c_str());
      return 1;
    }
    platform.run_for(cycles);
    std::uint64_t stall_cycle = 0;
    std::uint64_t restart_cycle = 0;
    for (const obs::Event& e : platform.machine().obs().bus().snapshot()) {
      if (e.kind == obs::EventKind::kFaultInject &&
          e.a == static_cast<std::uint32_t>(fault::FaultClass::kTaskStall)) {
        stall_cycle = e.cycle;
      } else if (e.kind == obs::EventKind::kFaultRecover &&
                 e.a == static_cast<std::uint32_t>(fault::RecoveryKind::kTaskRestart) &&
                 restart_cycle == 0) {
        restart_cycle = e.cycle;
      }
    }
    if (restart_cycle <= stall_cycle) {
      std::fprintf(stderr, "bench_fault: watchdog never restarted the task\n");
      return 1;
    }
    wd_table.row({"stall injected", bench::num(stall_cycle)});
    wd_table.row({"watchdog restart", bench::num(restart_cycle)});
    wd_table.row({"latency", bench::num(restart_cycle - stall_cycle)});
    report.add("watchdog.latency_cycles", restart_cycle - stall_cycle, 0);
  }
  wd_table.print();

  // ---- storage poison / re-store roundtrip --------------------------------
  bench::Table st_table("Secure-storage corruption recovery (slot 3)");
  st_table.columns({"step", "cycles charged", "outcome"});
  {
    core::Platform::Config config;
    config.fault_plan = parse_plan("storage-corrupt:slot3");
    core::Platform platform(config);
    if (!platform.boot().is_ok()) {
      std::fprintf(stderr, "bench_fault: boot failed\n");
      return 1;
    }
    auto& storage = platform.secure_storage();
    const rtos::TaskIdentity id = make_id(0x42);
    const ByteVec data(64, 0x5A);

    std::uint64_t mark = platform.machine().cycles();
    if (!storage.store(id, 3, data).is_ok()) {
      std::fprintf(stderr, "bench_fault: initial store failed\n");
      return 1;
    }
    st_table.row({"store", bench::num(platform.machine().cycles() - mark), "ok"});

    mark = platform.machine().cycles();
    auto corrupt = storage.load(id, 3);
    const std::uint64_t failed_load = platform.machine().cycles() - mark;
    if (corrupt.is_ok()) {
      std::fprintf(stderr, "bench_fault: corrupted load unexpectedly verified\n");
      return 1;
    }
    st_table.row({"load (corrupted)", bench::num(failed_load), "kCorrupt"});
    report.add("storage.failed_load_cycles", failed_load, 0);

    mark = platform.machine().cycles();
    if (!storage.store(id, 3, data).is_ok()) {
      std::fprintf(stderr, "bench_fault: recovery store failed\n");
      return 1;
    }
    auto back = storage.load(id, 3);
    const std::uint64_t recovery = platform.machine().cycles() - mark;
    if (!back.is_ok() || *back != data) {
      std::fprintf(stderr, "bench_fault: recovery roundtrip failed\n");
      return 1;
    }
    st_table.row({"re-store + load", bench::num(recovery), "ok"});
    report.add("storage.recovery_cycles", recovery, 0);
    report.add("storage.poisoned_after_recovery", storage.poisoned_count(), 0);
  }
  st_table.print();

  std::printf("\nsimulated work identical with and without a dormant fault plan "
              "(%llu cycles)\n",
              static_cast<unsigned long long>(cycles_off));
  return 0;
}
