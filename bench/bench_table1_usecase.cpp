// Table 1 + Figure 2 — the adaptive cruise control use case.
//
// Three secure tasks (paper §6):
//   t1 monitors the accelerator-pedal sensor and reports to t0 (secure IPC);
//   t2 is loaded ON DEMAND when cruise control is activated and monitors the
//      radar sensor;
//   t0 implements the engine control software and commands the throttle.
// All run at 1.5 kHz.  Loading t2 (relocation + stack preparation +
// measurement) takes 27.8 ms in the paper — dozens of 0.67 ms scheduling
// periods — yet t0 and t1 keep meeting their deadlines because every loading
// step is interruptible.
//
// Paper Table 1:             t1       t2       t0
//   Before loading t2     1.5 kHz     —     1.5 kHz
//   While  loading t2     1.5 kHz     —     1.5 kHz
//   After  loading t2     1.5 kHz  1.5 kHz  1.5 kHz
#include <sstream>

#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::uint32_t kTick = 32'000;  // 1.5 kHz at 48 MHz

/// t0: engine control.  Polls its mailbox for tagged sensor reports
/// (1 = pedal, 2 = radar) and commands throttle = pedal - radar/4 each period.
constexpr std::string_view kT0 = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r6, 0x100400     ; engine actuator
    movi r3, 0            ; latest pedal
    movi r4, 0            ; latest radar
loop:
    li   r5, __tytan_mailbox
    ldw  r1, [r5+8]       ; tag
    cmpi r1, 1
    jnz  not_pedal
    ldw  r3, [r5+12]
not_pedal:
    cmpi r1, 2
    jnz  not_radar
    ldw  r4, [r5+12]
not_radar:
    mov  r1, r4
    shri r1, 2
    mov  r2, r3
    sub  r2, r1           ; throttle = pedal - radar/4
    stw  r2, [r6]
    movi r0, 2            ; kSysDelay 1 tick
    movi r1, 1
    int  0x21
    jmp  loop
)";

/// Sensor-monitor task: reads an MMIO sensor and reports to t0 via async
/// secure IPC, once per period.  `pad` bytes make t2 large (long load).
std::string monitor_source(std::uint32_t mmio, unsigned tag, std::uint32_t pad) {
  std::ostringstream os;
  os << R"(
    .secure
    .stack 256
    .entry main
main:
loop:
    li   r5, idt0
    ldw  r1, [r5]
    ldw  r2, [r5+4]
    li   r6, )" << mmio << R"(
    ldw  r4, [r6]         ; sensor value -> message word 1
    movi r3, )" << tag << R"(
    movi r0, 1            ; kIpcSendAsync
    int  0x22
    movi r0, 2            ; kSysDelay 1 tick
    movi r1, 1
    int  0x21
    jmp  loop
idt0:
    .word 0, 0
)";
  if (pad != 0) {
    os << "    .space " << pad << "\n";
  }
  return os.str();
}

void provision_t0_id(Platform& platform, rtos::TaskHandle monitor,
                     const std::string& source, rtos::TaskHandle t0) {
  const rtos::Tcb* m = platform.scheduler().get(monitor);
  const rtos::Tcb* c = platform.scheduler().get(t0);
  auto probe = isa::assemble(source);
  const std::uint32_t idr = m->region_base + probe->symbols.at("idt0");
  platform.machine().memory().write32(idr, load_le32(c->identity.data()));
  platform.machine().memory().write32(idr + 4, load_le32(c->identity.data() + 4));
}

struct PhaseRates {
  double t1_khz;
  double t2_khz;
  double t0_khz;
};

struct Counters {
  std::uint64_t pedal, radar, engine, cycles;
};

Counters snapshot(Platform& platform) {
  return {platform.pedal().reads(), platform.radar().reads(),
          platform.engine().commands().size(), platform.machine().cycles()};
}

PhaseRates rates(const Counters& a, const Counters& b) {
  const double seconds =
      static_cast<double>(b.cycles - a.cycles) / static_cast<double>(sim::kClockHz);
  return {(static_cast<double>(b.pedal - a.pedal) / seconds) / 1000.0,
          (static_cast<double>(b.radar - a.radar) / seconds) / 1000.0,
          (static_cast<double>(b.engine - a.engine) / seconds) / 1000.0};
}

std::string khz(double v) {
  return v < 0.01 ? std::string("-") : bench::fixed(v) + " kHz";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table1_usecase", options);
  // Smoke mode (CI): shorter measurement phases and a smaller t2 image.  The
  // default run is untouched so its cycle counts stay comparable across
  // builds.
  const std::uint64_t phase_ticks = options.smoke ? 30 : 120;
  const std::uint32_t t2_pad = options.smoke ? 2'000 : 11'800;

  Platform::Config config;
  config.tick_period = kTick;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  platform.pedal().set_value(40);
  platform.radar().set_value(80);

  // Boot-time tasks: t0 (engine control) and t1 (pedal monitor).
  auto t0 = platform.load_task_source(kT0, {.name = "t0", .priority = 6});
  TYTAN_CHECK(t0.is_ok(), t0.status().to_string());
  const std::string t1_source = monitor_source(sim::kMmioPedal, 1, 0);
  auto t1 = platform.load_task_source(t1_source, {.name = "t1", .priority = 5,
                                                  .auto_start = false});
  TYTAN_CHECK(t1.is_ok(), t1.status().to_string());
  provision_t0_id(platform, *t1, t1_source, *t0);
  TYTAN_CHECK(platform.resume_task(*t1).is_ok(), "t1 start failed");

  // Warm-up, then phase 1: before loading t2.
  platform.run_for(20 * kTick);
  const Counters p1_begin = snapshot(platform);
  platform.run_for(phase_ticks * kTick);
  const Counters p1_end = snapshot(platform);

  // Phase 2: the driver activates cruise control -> t2 is loaded on demand.
  const std::string t2_source = monitor_source(sim::kMmioRadar, 2, t2_pad);
  auto t2_obj = isa::assemble(t2_source);
  TYTAN_CHECK(t2_obj.is_ok(), t2_obj.status().to_string());
  auto t2 = platform.load_task_async(t2_obj.take(),
                                     {.name = "t2", .priority = 5, .auto_start = false});
  TYTAN_CHECK(t2.is_ok(), t2.status().to_string());
  const Counters p2_begin = snapshot(platform);
  platform.run_until([&] { return !platform.load_in_progress(); }, 3'000 * kTick);
  const Counters p2_end = snapshot(platform);
  const double load_ms = static_cast<double>(p2_end.cycles - p2_begin.cycles) * 1000.0 /
                         static_cast<double>(sim::kClockHz);

  // Phase 3: after loading — provision t2 and let it run.
  provision_t0_id(platform, *t2, t2_source, *t0);
  TYTAN_CHECK(platform.resume_task(*t2).is_ok(), "t2 start failed");
  platform.run_for(20 * kTick);
  const Counters p3_begin = snapshot(platform);
  platform.run_for(phase_ticks * kTick);
  const Counters p3_end = snapshot(platform);

  const PhaseRates before = rates(p1_begin, p1_end);
  const PhaseRates during = rates(p2_begin, p2_end);
  const PhaseRates after = rates(p3_begin, p3_end);

  bench::Table table("Table 1: use-case evaluation (task rates; paper: 1.5 kHz each)");
  table.columns({"Task", "t1 (pedal)", "t2 (radar)", "t0 (engine)"});
  table.row({"Before loading t2", khz(before.t1_khz), khz(before.t2_khz), khz(before.t0_khz)});
  table.row({"While loading t2", khz(during.t1_khz), khz(during.t2_khz), khz(during.t0_khz)});
  table.row({"After loading t2", khz(after.t1_khz), khz(after.t2_khz), khz(after.t0_khz)});
  table.row({"Paper (all phases)", "1.5 kHz", "- / - / 1.5 kHz", "1.5 kHz"});
  table.print();

  auto hz = [](double v_khz) { return static_cast<std::uint64_t>(v_khz * 1000.0 + 0.5); };
  report.add("t1 rate before load (Hz)", hz(before.t1_khz), 1500);
  report.add("t1 rate while loading (Hz)", hz(during.t1_khz), 1500);
  report.add("t1 rate after load (Hz)", hz(after.t1_khz), 1500);
  report.add("t0 rate while loading (Hz)", hz(during.t0_khz), 1500);
  report.add("t2 rate after load (Hz)", hz(after.t2_khz), 1500);

  const auto& create = platform.loader().last_create();
  std::printf("\nLoading t2: %.1f ms wall (paper: 27.8 ms); image %u bytes, %u relocations;"
              "\n  load work breakdown (cycles): copy=%llu reloc=%llu eampu=%llu rtm=%llu\n",
              load_ms, create.image_bytes, create.relocations,
              static_cast<unsigned long long>(create.copy),
              static_cast<unsigned long long>(create.reloc),
              static_cast<unsigned long long>(create.eampu),
              static_cast<unsigned long long>(create.rtm));
  std::printf("Deadlines: t0 and t1 held their rate during the load (loading is fully "
              "interruptible — the paper's central real-time claim).\n");
  std::printf("Throttle command stream: %zu commands, last value %u (pedal 40 - radar "
              "80/4 = 20).\n",
              platform.engine().commands().size(),
              platform.engine().commands().empty()
                  ? 0u
                  : platform.engine().commands().back().value);
  return 0;
}
