// Table 4 — Performance of creating a secure task (cycles).
//
// Paper (task of 3,962 bytes with 9 relocations, footnote 11):
//   Secure:  Relocation 3,692 | EA-MPU 225 | RTM 433,433 | Overall 642,241 | Overhead 437,380
//   Normal:  Relocation 3,692 | EA-MPU 225 | RTM 0       | Overall 208,808 | Overhead 3,917
//
// Note: the paper's RTM figure is inconsistent with its own Table 7 model
// (T ~= 4,300 + b*3,900 + 100 + a*500 gives ~250k cycles for 3,962 bytes);
// this reproduction follows the Table 7 model, so the secure Overall lands
// lower while every structural relationship (secure >> normal, overhead
// dominated by the RTM, normal overhead = relocation + EA-MPU) holds.
#include "bench_util.h"
#include "core/platform.h"
#include "task_gen.h"

using namespace tytan;
using core::Platform;

namespace {

core::TaskLoader::CreateStats create_once(bool secure) {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  isa::ObjectFile object = bench::make_task(3'962, 9, secure);
  auto task = platform.load_task(std::move(object),
                                 {.name = secure ? "secure" : "normal", .auto_start = false});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  return platform.loader().last_create();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table4_task_create", options);
  const auto secure = create_once(true);
  const auto normal = create_once(false);
  report.add("secure relocation", secure.reloc, 3'692);
  report.add("secure eampu", secure.eampu, 225);
  report.add("secure overall", secure.total, 642'241);
  report.add("normal relocation", normal.reloc, 3'692);
  report.add("normal overall", normal.total, 208'808);

  bench::Table table(
      "Table 4: creating a task of 3,962 bytes with 9 relocations (clock cycles)");
  table.columns({"Task type", "Relocation", "EA-MPU", "RTM", "Overall", "Overhead"});
  table.row({"Secure (measured)", bench::num(secure.reloc), bench::num(secure.eampu),
             bench::num(secure.rtm), bench::num(secure.total),
             bench::num(secure.reloc + secure.eampu + secure.rtm)});
  table.row({"Secure (paper)", "3,692", "225", "433,433", "642,241", "437,380"});
  table.row({"Normal (measured)", bench::num(normal.reloc), bench::num(normal.eampu),
             bench::num(normal.rtm), bench::num(normal.total),
             bench::num(normal.reloc + normal.eampu + normal.rtm)});
  table.row({"Normal (paper)", "3,692", "225", "0", "208,808", "3,917"});
  table.print();

  std::printf("\nBreakdown of the measured secure creation: alloc=%llu copy=%llu "
              "reloc=%llu stack=%llu eampu=%llu rtm=%llu\n",
              static_cast<unsigned long long>(secure.alloc),
              static_cast<unsigned long long>(secure.copy),
              static_cast<unsigned long long>(secure.reloc),
              static_cast<unsigned long long>(secure.stack),
              static_cast<unsigned long long>(secure.eampu),
              static_cast<unsigned long long>(secure.rtm));
  std::printf("Shape check: secure overall >> normal overall (ratio %.2fx, paper 3.08x); "
              "RTM dominates the secure overhead: %s\n",
              static_cast<double>(secure.total) / static_cast<double>(normal.total),
              secure.rtm > secure.reloc + secure.eampu ? "yes" : "NO");
  return 0;
}
