// Host-side performance of the simulator itself (google-benchmark).
//
// These are NOT paper numbers — the paper reports guest cycles, reproduced
// by the bench_table* binaries.  This harness tracks how fast the simulation
// runs on the host, which bounds how much simulated time the examples and
// property tests can afford.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/platform.h"
#include "crypto/sha1.h"
#include "isa/assembler.h"

using namespace tytan;

namespace {

void BM_Sha1Throughput(benchmark::State& state) {
  const ByteVec data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Assemble(benchmark::State& state) {
  const std::string source = R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, data
      ldw  r3, [r2]
      addi r3, 1
      stw  r3, [r2]
      movi r0, 1
      int  0x21
      jmp  main
  data:
      .word 0
  )";
  for (auto _ : state) {
    auto object = isa::assemble(source);
    benchmark::DoNotOptimize(object);
  }
}
BENCHMARK(BM_Assemble);

void BM_PlatformBoot(benchmark::State& state) {
  for (auto _ : state) {
    core::Platform platform;
    benchmark::DoNotOptimize(platform.boot());
  }
}
BENCHMARK(BM_PlatformBoot);

void BM_GuestExecution(benchmark::State& state) {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r5, 1
      jmp  main
  )", {.name = "spin"});
  if (!task.is_ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const std::uint64_t before = platform.machine().instructions_executed();
    platform.run_for(100'000);
    instructions += platform.machine().instructions_executed() - before;
  }
  state.counters["guest_instr_per_s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.counters["sim_cycles_per_iter"] = 100'000;
}
BENCHMARK(BM_GuestExecution);

void BM_SecureTaskCreate(benchmark::State& state) {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 1
      int  0x21
      jmp  main
  )");
  int i = 0;
  for (auto _ : state) {
    auto task = platform.load_task(*object, {.name = "t" + std::to_string(i++),
                                             .auto_start = false});
    if (!task.is_ok()) {
      state.SkipWithError("load failed");
      return;
    }
    state.PauseTiming();
    (void)platform.loader().unload(*task);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SecureTaskCreate);

/// Deterministic guest-side rows for the `--json` artifact: instruction
/// throughput per simulated window is a function of the ISA model alone, so
/// these numbers are comparable across CI hosts (unlike the host-time
/// numbers google-benchmark prints).
void write_json_rows(const bench::BenchOptions& options) {
  bench::JsonReport report("host_perf", options);
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    return;
  }
  report.add("boot_cycles", platform.machine().cycles(), 0);
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r5, 1
      jmp  main
  )", {.name = "spin"});
  if (!task.is_ok()) {
    return;
  }
  const std::uint64_t before = platform.machine().instructions_executed();
  platform.run_for(100'000);
  report.add("guest_instr_per_100k_cycles",
             platform.machine().instructions_executed() - before, 0);
}

}  // namespace

int main(int argc, char** argv) {
  // Split the standard bench interface (--smoke, --json=FILE) from
  // google-benchmark's own flags, which pass through untouched.
  bench::BenchOptions options;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  write_json_rows(options);
  if (options.smoke) {
    // Smoke keeps CI fast: the deterministic JSON rows above are the
    // artifact; the host-time measurement loop is skipped.
    std::printf("bench_host_perf: smoke mode, google-benchmark run skipped\n");
    return 0;
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
