// Host-side performance of the simulator itself (google-benchmark).
//
// These are NOT paper numbers — the paper reports guest cycles, reproduced
// by the bench_table* binaries.  This harness tracks how fast the simulation
// runs on the host, which bounds how much simulated time the examples and
// property tests can afford.  It is the standing A/B harness for interpreter
// work (ROADMAP item 1, the decode cache): the `--json` artifact publishes
// guest-MIPS per workload plus the raw sim-cycle / instruction / host-ns
// rows they derive from, with the execution observatory off and on AND with
// the decode cache on (default) and off (`_interp_*` rows).  All legs must
// agree on every simulated quantity — cycles, instructions, registers, EIP,
// EFLAGS, fault count — or the binary exits 1, so CI catches an observability
// layer that leaks cycles or a dispatch mode that diverges.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/platform.h"
#include "crypto/sha1.h"
#include "isa/assembler.h"

using namespace tytan;

namespace {

void BM_Sha1Throughput(benchmark::State& state) {
  const ByteVec data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Assemble(benchmark::State& state) {
  const std::string source = R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r2, data
      ldw  r3, [r2]
      addi r3, 1
      stw  r3, [r2]
      movi r0, 1
      int  0x21
      jmp  main
  data:
      .word 0
  )";
  for (auto _ : state) {
    auto object = isa::assemble(source);
    benchmark::DoNotOptimize(object);
  }
}
BENCHMARK(BM_Assemble);

void BM_PlatformBoot(benchmark::State& state) {
  for (auto _ : state) {
    core::Platform platform;
    benchmark::DoNotOptimize(platform.boot());
  }
}
BENCHMARK(BM_PlatformBoot);

void BM_GuestExecution(benchmark::State& state) {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  auto task = platform.load_task_source(R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r5, 1
      jmp  main
  )", {.name = "spin"});
  if (!task.is_ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const std::uint64_t before = platform.machine().instructions_executed();
    platform.run_for(100'000);
    instructions += platform.machine().instructions_executed() - before;
  }
  state.counters["guest_instr_per_s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.counters["sim_cycles_per_iter"] = 100'000;
}
BENCHMARK(BM_GuestExecution);

void BM_SecureTaskCreate(benchmark::State& state) {
  core::Platform platform;
  if (!platform.boot().is_ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  auto object = isa::assemble(R"(
      .secure
      .stack 256
      .entry main
  main:
      movi r0, 1
      int  0x21
      jmp  main
  )");
  int i = 0;
  for (auto _ : state) {
    auto task = platform.load_task(*object, {.name = "t" + std::to_string(i++),
                                             .auto_start = false});
    if (!task.is_ok()) {
      state.SkipWithError("load failed");
      return;
    }
    state.PauseTiming();
    (void)platform.loader().unload(*task);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SecureTaskCreate);

/// Guest workloads exercising the distinct interpreter hot paths: plain ALU
/// dispatch, the load/store MPU choke point, call/ret stack traffic, and
/// computed jumps through a table (the indirect-edge recording path).
struct Workload {
  const char* name;
  const char* source;
};

constexpr Workload kWorkloads[] = {
    {"spin", R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r5, 1
      jmp  main
  )"},
    {"memory", R"(
      .secure
      .stack 128
      .entry main
  main:
      li   r2, data
  loop:
      ldw  r3, [r2]
      addi r3, 1
      stw  r3, [r2]
      jmp  loop
  data:
      .word 0
  )"},
    {"call_branch", R"(
      .secure
      .stack 256
      .entry main
  main:
      call bump
      cmpi r5, 0
      jnz  main
      jmp  main
  bump:
      addi r5, 1
      ret
  )"},
    // Long straight-line block (32 ALU ops per loop): the regime decoded
    // dispatch is built for — the interpreter pays fetch + decode + the
    // EA-MPU walk on every instruction, the cache pays one cursor bump.
    // This is the shape of attestation / hashing inner loops.
    {"alu_block", R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r1, 1
      xor  r2, r1
      shli r3, 1
      ori  r3, 5
      add  r4, r1
      andi r4, 255
      sub  r5, r2
      shri r5, 3
      addi r1, 7
      xor  r2, r4
      shli r3, 2
      ori  r3, 9
      add  r4, r2
      andi r4, 1023
      sub  r5, r1
      shri r5, 1
      addi r1, 3
      xor  r2, r3
      shli r3, 1
      ori  r3, 17
      add  r4, r3
      andi r4, 4095
      sub  r5, r4
      shri r5, 2
      addi r1, 11
      xor  r2, r5
      shli r3, 3
      ori  r3, 33
      add  r4, r5
      andi r4, 65535
      sub  r5, r3
      shri r5, 4
      jmp  main
  )"},
    {"jump_table", R"(
      .secure
      .stack 128
      .entry main
  main:
      addi r1, 1
      andi r1, 3
      shli r1, 2
      li   r2, table
      add  r2, r1
      ldw  r2, [r2]
      shri r1, 2
      jmpr r2
  case0:
      jmp  main
  case1:
      jmp  main
  case2:
      jmp  main
  case3:
      jmp  main
  table:
      .word case0, case1, case2, case3
  )"},
};

struct RunResult {
  std::uint64_t sim_cycles = 0;     ///< simulated cycles the window advanced
  std::uint64_t instructions = 0;   ///< guest instructions dispatched
  std::uint64_t host_ns = 0;        ///< host wall time for the window
  // Final simulated machine state, compared bit-for-bit across the
  // observatory A/B and the dispatch-mode A/B.
  std::array<std::uint32_t, 8> regs{};
  std::uint32_t eip = 0;
  std::uint32_t eflags = 0;
  std::uint64_t faults = 0;

  [[nodiscard]] bool same_sim_state(const RunResult& other) const {
    return sim_cycles == other.sim_cycles && instructions == other.instructions &&
           regs == other.regs && eip == other.eip && eflags == other.eflags &&
           faults == other.faults;
  }
};

/// Boot a fresh platform, load `source`, run a `window`-cycle quantum, and
/// measure.  `heat` turns the execution observatory on before boot (the mode
/// tytan-run --heat-out uses); `dispatch` selects the interpreter or the
/// decoded basic-block cache.
std::optional<RunResult> run_workload(const char* source, std::uint64_t window,
                                      bool heat, sim::DispatchMode dispatch) {
  core::Platform::Config config;
  config.dispatch = dispatch;
  core::Platform platform(config);
  if (heat) {
    platform.machine().enable_heat();
  }
  if (!platform.boot().is_ok()) {
    return std::nullopt;
  }
  auto task = platform.load_task_source(source, {.name = "workload"});
  if (!task.is_ok()) {
    return std::nullopt;
  }
  RunResult result;
  const std::uint64_t c0 = platform.machine().cycles();
  const std::uint64_t i0 = platform.machine().instructions_executed();
  const auto t0 = std::chrono::steady_clock::now();
  platform.run_for(window);
  const auto t1 = std::chrono::steady_clock::now();
  result.sim_cycles = platform.machine().cycles() - c0;
  result.instructions = platform.machine().instructions_executed() - i0;
  result.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  const sim::CpuState& cpu = platform.machine().cpu();
  for (std::size_t i = 0; i < result.regs.size(); ++i) {
    result.regs[i] = cpu.regs[i];
  }
  result.eip = cpu.eip;
  result.eflags = cpu.eflags;
  result.faults = platform.machine().fault_count();
  return result;
}

/// MIPS×1000 so the artifact stays integer rows (bench_util's JSON shape).
std::uint64_t mips_x1000(const RunResult& r) {
  return r.host_ns == 0 ? 0 : r.instructions * 1'000'000 / r.host_ns;
}

/// Per-workload guest-MIPS rows plus the observatory on/off A/B.  Returns
/// false when the on/off runs disagree on any simulated quantity — the
/// zero-simulated-cost invariant the observatory promises.
bool write_json_rows(const bench::BenchOptions& options) {
  bench::JsonReport report("host_perf", options);
  {
    core::Platform platform;
    if (!platform.boot().is_ok()) {
      std::fprintf(stderr, "bench_host_perf: boot failed\n");
      return false;
    }
    report.add("boot_cycles", platform.machine().cycles(), 0);
  }

  const std::uint64_t window = options.smoke ? 2'000'000 : 20'000'000;
  auto table = bench::Table("guest throughput (window " +
                            std::to_string(window) + " cycles)");
  table.columns({"workload", "instructions", "MIPS", "MIPS (interp)",
                 "speedup", "MIPS (heat)", "heat overhead"});
  bool ok = true;
  std::uint64_t total_instructions = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t total_interp_ns = 0;
  std::uint64_t total_heat_ns = 0;
  for (const Workload& workload : kWorkloads) {
    // Three runs per workload: the default configuration (decode cache,
    // observatory off), the observatory A/B leg, and the interpreter A/B
    // leg.  All three must agree on every simulated quantity.
    const auto off = run_workload(workload.source, window, /*heat=*/false,
                                  sim::DispatchMode::kCached);
    const auto on = run_workload(workload.source, window, /*heat=*/true,
                                 sim::DispatchMode::kCached);
    const auto interp = run_workload(workload.source, window, /*heat=*/false,
                                     sim::DispatchMode::kInterpreter);
    if (!off.has_value() || !on.has_value() || !interp.has_value()) {
      std::fprintf(stderr, "bench_host_perf: %s failed to run\n", workload.name);
      ok = false;
      continue;
    }
    if (!off->same_sim_state(*on)) {
      std::fprintf(stderr,
                   "bench_host_perf: %s: observatory changed simulated state: "
                   "cycles %llu vs %llu, instructions %llu vs %llu\n",
                   workload.name,
                   static_cast<unsigned long long>(off->sim_cycles),
                   static_cast<unsigned long long>(on->sim_cycles),
                   static_cast<unsigned long long>(off->instructions),
                   static_cast<unsigned long long>(on->instructions));
      ok = false;
    }
    if (!off->same_sim_state(*interp)) {
      std::fprintf(stderr,
                   "bench_host_perf: %s: dispatch modes diverged: "
                   "cycles %llu vs %llu, instructions %llu vs %llu, "
                   "eip %08x vs %08x, faults %llu vs %llu\n",
                   workload.name,
                   static_cast<unsigned long long>(off->sim_cycles),
                   static_cast<unsigned long long>(interp->sim_cycles),
                   static_cast<unsigned long long>(off->instructions),
                   static_cast<unsigned long long>(interp->instructions),
                   off->eip, interp->eip,
                   static_cast<unsigned long long>(off->faults),
                   static_cast<unsigned long long>(interp->faults));
      ok = false;
    }
    const std::string name = workload.name;
    report.add(name + "_sim_cycles", off->sim_cycles, 0);
    report.add(name + "_instructions", off->instructions, 0);
    report.add(name + "_host_ns", off->host_ns, 0);
    report.add(name + "_guest_mips_x1000", mips_x1000(*off), 0);
    report.add(name + "_interp_host_ns", interp->host_ns, 0);
    report.add(name + "_interp_guest_mips_x1000", mips_x1000(*interp), 0);
    report.add(name + "_heat_host_ns", on->host_ns, 0);
    report.add(name + "_heat_guest_mips_x1000", mips_x1000(*on), 0);
    total_instructions += off->instructions;
    total_ns += off->host_ns;
    total_interp_ns += interp->host_ns;
    total_heat_ns += on->host_ns;
    const double overhead =
        off->host_ns == 0
            ? 0.0
            : 100.0 * (static_cast<double>(on->host_ns) -
                       static_cast<double>(off->host_ns)) /
                  static_cast<double>(off->host_ns);
    const double speedup =
        off->host_ns == 0 ? 0.0
                          : static_cast<double>(interp->host_ns) /
                                static_cast<double>(off->host_ns);
    table.row({workload.name, bench::num(off->instructions),
               bench::fixed(mips_x1000(*off) / 1000.0),
               bench::fixed(mips_x1000(*interp) / 1000.0),
               bench::fixed(speedup) + "x",
               bench::fixed(mips_x1000(*on) / 1000.0),
               bench::fixed(overhead, 1) + "%"});
  }
  RunResult overall;
  overall.instructions = total_instructions;
  overall.host_ns = total_ns;
  RunResult overall_interp;
  overall_interp.instructions = total_instructions;
  overall_interp.host_ns = total_interp_ns;
  RunResult overall_heat;
  overall_heat.instructions = total_instructions;
  overall_heat.host_ns = total_heat_ns;
  report.add("overall_instructions", total_instructions, 0);
  report.add("overall_host_ns", total_ns, 0);
  report.add("overall_guest_mips_x1000", mips_x1000(overall), 0);
  report.add("overall_interp_host_ns", total_interp_ns, 0);
  report.add("overall_interp_guest_mips_x1000", mips_x1000(overall_interp), 0);
  report.add("overall_heat_host_ns", total_heat_ns, 0);
  report.add("overall_heat_guest_mips_x1000", mips_x1000(overall_heat), 0);
  table.row({"overall", bench::num(total_instructions),
             bench::fixed(mips_x1000(overall) / 1000.0),
             bench::fixed(mips_x1000(overall_interp) / 1000.0),
             total_ns == 0 ? "-"
                           : bench::fixed(static_cast<double>(total_interp_ns) /
                                          static_cast<double>(total_ns)) + "x",
             bench::fixed(mips_x1000(overall_heat) / 1000.0),
             total_ns == 0 ? "-"
                           : bench::fixed(100.0 *
                                              (static_cast<double>(total_heat_ns) -
                                               static_cast<double>(total_ns)) /
                                              static_cast<double>(total_ns),
                                          1) + "%"});
  table.print();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Split the standard bench interface (--smoke, --json=FILE) from
  // google-benchmark's own flags, which pass through untouched.
  bench::BenchOptions options;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bool invariant_ok = write_json_rows(options);
  if (!invariant_ok) {
    return 1;  // observatory A/B or dispatch-mode A/B disagreed on sim state
  }
  if (options.smoke) {
    // Smoke keeps CI fast: the deterministic JSON rows above are the
    // artifact; the host-time measurement loop is skipped.
    std::printf("bench_host_perf: smoke mode, google-benchmark run skipped\n");
    return 0;
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
