// Interrupt-to-task latency distribution (extension bench).
//
// The paper's Tables 2/3 give the context save/restore costs in isolation;
// this bench measures what they compose into in practice: the latency from
// a timer tick to the first useful instruction of the woken task (an engine
// write), for a secure task vs a normal task, over hundreds of periods.
// The bounded, low-jitter distribution is the operational meaning of
// "real-time compliant".
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::uint32_t kTick = 32'000;

std::vector<std::uint64_t> measure(bool secure, unsigned periods) {
  Platform::Config config;
  config.tick_period = kTick;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  std::string source = R"(
    .stack 256
    .entry main
main:
    li   r4, 0x100400     ; engine actuator
loop:
    movi r2, 1
    stw  r2, [r4]         ; first useful instruction after wake
    movi r0, 2            ; kSysDelay 1 tick
    movi r1, 1
    int  0x21
    jmp  loop
)";
  if (secure) {
    source = "    .secure\n" + source;
  }
  auto task = platform.load_task_source(source, {.name = "periodic", .priority = 5});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  platform.run_for(static_cast<std::uint64_t>(periods) * kTick);

  // Latency of each engine write relative to the preceding tick boundary.
  std::vector<std::uint64_t> latencies;
  for (const auto& command : platform.engine().commands()) {
    latencies.push_back(command.cycle % kTick);
  }
  if (latencies.size() > 20) {
    latencies.erase(latencies.begin(), latencies.begin() + 10);  // warm-up
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

std::uint64_t pct(const std::vector<std::uint64_t>& v, double p) {
  return v.empty() ? 0 : v[static_cast<std::size_t>(p * (v.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("latency", options);
  const unsigned periods = options.smoke ? 60 : 400;
  const auto secure = measure(true, periods);
  const auto normal = measure(false, periods);
  report.add("secure_p50", pct(secure, 0.5), 0);
  report.add("secure_p99", pct(secure, 0.99), 0);
  report.add("normal_p50", pct(normal, 0.5), 0);
  report.add("normal_p99", pct(normal, 0.99), 0);

  bench::Table table("Tick-to-task latency over ~" + std::to_string(periods) +
                     " periods (cycles after the tick)");
  table.columns({"Task type", "samples", "min", "p50", "p99", "max"});
  table.row({"secure task", bench::num(secure.size()), bench::num(pct(secure, 0.0)),
             bench::num(pct(secure, 0.5)), bench::num(pct(secure, 0.99)),
             bench::num(pct(secure, 1.0))});
  table.row({"normal task", bench::num(normal.size()), bench::num(pct(normal, 0.0)),
             bench::num(pct(normal, 0.5)), bench::num(pct(normal, 1.0)),
             bench::num(pct(normal, 1.0))});
  table.print();

  const std::uint64_t overhead = pct(secure, 0.5) > pct(normal, 0.5)
                                     ? pct(secure, 0.5) - pct(normal, 0.5)
                                     : 0;
  std::printf("\nSecure-task median wake latency overhead: %llu cycles (~Table 2 save "
              "overhead 57 + Table 3 restore overhead of the resume path).\n",
              static_cast<unsigned long long>(overhead));
  std::printf("Jitter bound: max-min = %llu (secure) / %llu (normal) cycles — bounded, "
              "as real-time scheduling requires.\n",
              static_cast<unsigned long long>(pct(secure, 1.0) - pct(secure, 0.0)),
              static_cast<unsigned long long>(pct(normal, 1.0) - pct(normal, 0.0)));
  return 0;
}
