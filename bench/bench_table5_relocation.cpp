// Table 5 — Performance of relocation vs. number of relocated addresses.
//
// Paper: 0 -> 37 | 1 -> 673/703 | 2 -> 1,346/1,372 | 4 -> 2,634/2,711
// (min / avg over placements); runtime is linear in the address count.
//
// Method: load tasks containing exactly n ABS32 relocation records at
// several arena placements and read the loader's relocation-phase cycles.
#include <algorithm>

#include "bench_util.h"
#include "core/platform.h"
#include "task_gen.h"

using namespace tytan;
using core::Platform;

namespace {

struct MinAvg {
  std::uint64_t min;
  std::uint64_t avg;
};

MinAvg measure(unsigned relocs) {
  Platform platform;
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  std::vector<std::uint64_t> samples;
  std::vector<rtos::TaskHandle> pinned;
  for (int placement = 0; placement < 5; ++placement) {
    isa::ObjectFile object = bench::make_task(1'024, relocs, /*secure=*/false);
    auto task = platform.load_task(std::move(object),
                                   {.name = "t" + std::to_string(placement),
                                    .auto_start = false});
    TYTAN_CHECK(task.is_ok(), task.status().to_string());
    samples.push_back(platform.loader().last_create().reloc);
    // Pin a small allocation so the next placement differs.
    pinned.push_back(*task);
  }
  MinAvg out{*std::min_element(samples.begin(), samples.end()), 0};
  std::uint64_t sum = 0;
  for (const std::uint64_t s : samples) {
    sum += s;
  }
  out.avg = sum / samples.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::JsonReport report("table5_relocation", options);
  const unsigned counts[] = {0, 1, 2, 4, 8, 16};
  const std::uint64_t paper_min[] = {37, 673, 1'346, 2'634, 0, 0};
  const std::uint64_t paper_avg[] = {37, 703, 1'372, 2'711, 0, 0};

  bench::Table table("Table 5: relocation vs number of relocated addresses (clock cycles)");
  table.columns({"# of addresses", "Runtime min (measured)", "Runtime avg (measured)",
                 "Runtime min (paper)", "Runtime avg (paper)"});
  std::vector<MinAvg> results;
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    const MinAvg m = measure(counts[i]);
    results.push_back(m);
    table.row({bench::num(counts[i]), bench::num(m.min), bench::num(m.avg),
               paper_min[i] != 0 || counts[i] == 0 ? bench::num(paper_min[i]) : "-",
               paper_avg[i] != 0 || counts[i] == 0 ? bench::num(paper_avg[i]) : "-"});
    if (paper_avg[i] != 0 || counts[i] == 0) {
      report.add(bench::num(counts[i]) + " addresses avg", m.avg, paper_avg[i]);
    }
  }
  table.print();

  // Linearity check: per-address increments should be near-constant.
  const double per_addr_1 = static_cast<double>(results[1].avg - results[0].avg);
  const double per_addr_4 =
      static_cast<double>(results[3].avg - results[0].avg) / 4.0;
  const double per_addr_16 =
      static_cast<double>(results[5].avg - results[0].avg) / 16.0;
  std::printf("\nPer-address cost: n=1 -> %.0f, n=4 -> %.0f, n=16 -> %.0f cycles "
              "(paper ~660; linear: %s)\n",
              per_addr_1, per_addr_4, per_addr_16,
              std::abs(per_addr_1 - per_addr_16) < 0.05 * per_addr_1 + 5 ? "yes" : "NO");
  return 0;
}
