// Shared helpers for the table-reproduction benches.
//
// The paper reports everything in *clock cycles* ("we present all results in
// clock cycles since the clock-speed of a platform is variable", §6), so the
// benches read the simulator's cycle clock rather than host wall time, and
// print paper-reported values next to measured ones.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace tytan::bench {

/// Command-line options every table bench understands:
///   --json=FILE (or --json FILE)  append machine-readable results to FILE
///   --smoke                       cut iteration counts for CI smoke runs
struct BenchOptions {
  std::string json_path;
  bool smoke = false;
};

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --json=FILE, --smoke)\n",
                   argv[0], arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Collects measured-vs-paper records and writes them as a JSON array of
///   {"bench": ..., "row": ..., "paper": N, "measured": N}
/// when the destructor runs (no file is written without --json).
class JsonReport {
 public:
  JsonReport(std::string bench, const BenchOptions& options)
      : bench_(std::move(bench)), path_(options.json_path) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(std::string row, std::uint64_t measured, std::uint64_t paper) {
    records_.push_back({std::move(row), measured, paper});
  }

  ~JsonReport() {
    if (path_.empty()) {
      return;
    }
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(out,
                   "  {\"bench\": \"%s\", \"row\": \"%s\", \"paper\": %llu, "
                   "\"measured\": %llu}%s\n",
                   bench_.c_str(), r.row.c_str(),
                   static_cast<unsigned long long>(r.paper),
                   static_cast<unsigned long long>(r.measured),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
  }

 private:
  struct Record {
    std::string row;
    std::uint64_t measured = 0;
    std::uint64_t paper = 0;
  };
  std::string bench_;
  std::string path_;
  std::vector<Record> records_;
};

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }

inline std::string fixed(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// "measured (paper: X)" comparison cell.
inline std::string vs(std::uint64_t measured, std::uint64_t paper) {
  return num(measured) + " (paper: " + num(paper) + ")";
}

}  // namespace tytan::bench
