// Shared helpers for the table-reproduction benches.
//
// The paper reports everything in *clock cycles* ("we present all results in
// clock cycles since the clock-speed of a platform is variable", §6), so the
// benches read the simulator's cycle clock rather than host wall time, and
// print paper-reported values next to measured ones.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tytan::bench {

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }

inline std::string fixed(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// "measured (paper: X)" comparison cell.
inline std::string vs(std::uint64_t measured, std::uint64_t paper) {
  return num(measured) + " (paper: " + num(paper) + ")";
}

}  // namespace tytan::bench
