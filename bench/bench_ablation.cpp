// Ablations over TyTAN's design choices (DESIGN.md §4).
//
// A. Interruptible vs blocking task loading.  SMART/SPM/SANCUS perform
//    non-interruptible measurement; the paper's central claim is that
//    TyTAN's preemptible loader/RTM preserves real-time deadlines.  We run
//    the cruise-control-style control task and load a large task either
//    asynchronously (TyTAN) or atomically (SMART-style), and compare the
//    worst observed gap between engine commands.
//
// B. Software vs hardware context save.  Paper §4: "saving the task's
//    context to its stack can be implemented in hardware, reducing latency
//    at the cost of additional hardware."  We re-run the Table 2 experiment
//    under a cost model with single-cycle hardware register save/wipe.
//
// C. 64-bit identity truncation (footnote 9): receiver lookup compares two
//    words per probe instead of five; we compare IPC proxy runtimes.
#include "bench_util.h"
#include "core/platform.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::uint32_t kTick = 32'000;

constexpr std::string_view kControl = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r4, 0x100200
    li   r5, 0x100400
loop:
    ldw  r2, [r4]
    stw  r2, [r5]
    movi r0, 2
    movi r1, 1
    int  0x21
    jmp  loop
)";

std::string big_task() {
  std::string s = "    .secure\n    .stack 256\n    .entry main\nmain:\npark:\n"
                  "    movi r0, 1\n    int 0x21\n    jmp park\n    .space 11800\n";
  return s;
}

std::uint64_t worst_engine_gap(const sim::EngineActuator& engine, std::uint64_t from,
                               std::uint64_t to) {
  std::uint64_t last = from;
  std::uint64_t worst = 0;
  for (const auto& command : engine.commands()) {
    if (command.cycle < from || command.cycle > to) {
      continue;
    }
    worst = std::max(worst, command.cycle - last);
    last = command.cycle;
  }
  return std::max(worst, to - last);
}

std::uint64_t run_load_scenario(bool interruptible) {
  Platform::Config config;
  config.tick_period = kTick;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  platform.pedal().set_value(25);
  auto control = platform.load_task_source(kControl, {.name = "ctrl", .priority = 6});
  TYTAN_CHECK(control.is_ok(), control.status().to_string());
  platform.run_for(20 * kTick);

  auto object = isa::assemble(big_task());
  TYTAN_CHECK(object.is_ok(), object.status().to_string());
  const std::uint64_t begin = platform.machine().cycles();
  if (interruptible) {
    auto task = platform.load_task_async(object.take(), {.name = "big", .priority = 1});
    TYTAN_CHECK(task.is_ok(), task.status().to_string());
    platform.run_until([&] { return !platform.load_in_progress(); }, 3'000 * kTick);
  } else {
    // SMART-style: the whole load + measurement runs to completion with the
    // CPU unavailable to everyone else (load_now charges all cycles inline).
    auto task = platform.load_task(object.take(), {.name = "big", .priority = 1});
    TYTAN_CHECK(task.is_ok(), task.status().to_string());
  }
  platform.run_for(20 * kTick);
  const std::uint64_t end = platform.machine().cycles();
  return worst_engine_gap(platform.engine(), begin, end);
}

std::uint64_t ctx_save_with(const sim::CostModel& costs) {
  Platform::Config config;
  config.costs = costs;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  auto task = platform.load_task_source(kControl, {.name = "t"});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  platform.run_until(
      [&] {
        return platform.int_mux().last_save().secure &&
               platform.int_mux().last_save().total > 0;
      },
      10'000'000);
  return platform.int_mux().last_save().total;
}

std::uint64_t ipc_proxy_cost_with(std::uint64_t probe_cost) {
  sim::CostModel costs;
  costs.ipc_registry_probe = probe_cost;
  Platform::Config config;
  config.costs = costs;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");

  constexpr std::string_view kReceiver = R"(
      .secure
      .stack 256
      .entry main
      .msg on_msg
  main:
      movi r0, 8
      int  0x21
  h:  jmp h
  on_msg:
      movi r0, 9
      int  0x21
  h2: jmp h2
  )";
  // Several receivers so lookups walk a populated registry.
  rtos::TaskHandle receiver = rtos::kNoTask;
  for (int i = 0; i < 4; ++i) {
    std::string variant(kReceiver);
    variant += "\n    .word " + std::to_string(i) + "\n";
    auto r = platform.load_task_source(variant, {.name = "r" + std::to_string(i),
                                                 .priority = 2});
    TYTAN_CHECK(r.is_ok(), r.status().to_string());
    receiver = *r;
  }
  const std::string sender = R"(
      .secure
      .stack 256
      .entry main
  main:
      li   r5, idr
      ldw  r1, [r5]
      ldw  r2, [r5+4]
      movi r0, 1
      movi r3, 7
      int  0x22
  park:
      movi r0, 1
      int  0x21
      jmp  park
  idr:
      .word 0, 0
  )";
  auto s = platform.load_task_source(sender, {.name = "send", .priority = 2,
                                              .auto_start = false});
  TYTAN_CHECK(s.is_ok(), s.status().to_string());
  const rtos::Tcb* st = platform.scheduler().get(*s);
  const rtos::Tcb* rt = platform.scheduler().get(receiver);
  auto probe = isa::assemble(sender);
  const std::uint32_t idr = st->region_base + probe->symbols.at("idr");
  platform.machine().memory().write32(idr, load_le32(rt->identity.data()));
  platform.machine().memory().write32(idr + 4, load_le32(rt->identity.data() + 4));
  TYTAN_CHECK(platform.resume_task(*s).is_ok(), "resume failed");
  platform.run_until([&] { return platform.ipc_proxy().last_ipc().delivered; },
                     30'000'000);
  return platform.ipc_proxy().last_ipc().proxy;
}

}  // namespace

namespace {

/// Ablation D helper: async-load a 12 KiB task under a given tick period and
/// report {load duration, interrupt count} — the responsiveness/overhead
/// trade-off of the RTOS tick rate.
std::pair<std::uint64_t, std::uint64_t> load_under_tick(std::uint32_t tick_period) {
  Platform::Config config;
  config.tick_period = tick_period;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  auto control = platform.load_task_source(kControl, {.name = "ctrl", .priority = 6});
  TYTAN_CHECK(control.is_ok(), control.status().to_string());
  platform.run_for(10 * tick_period);
  auto object = isa::assemble(big_task());
  TYTAN_CHECK(object.is_ok(), object.status().to_string());
  const std::uint64_t begin = platform.machine().cycles();
  const std::uint64_t irqs_begin = platform.machine().interrupts_dispatched();
  auto task = platform.load_task_async(object.take(), {.name = "big", .priority = 1});
  TYTAN_CHECK(task.is_ok(), task.status().to_string());
  platform.run_until([&] { return !platform.load_in_progress(); }, 600 * 32'000ull);
  return {platform.machine().cycles() - begin,
          platform.machine().interrupts_dispatched() - irqs_begin};
}

}  // namespace

int main() {
  // A. Interruptible vs blocking load.
  const std::uint64_t gap_async = run_load_scenario(true);
  const std::uint64_t gap_blocking = run_load_scenario(false);
  bench::Table a("Ablation A: worst control-loop gap while a 12 KiB task loads");
  a.columns({"Loader", "Worst engine-command gap (cycles)", "vs 1.5 kHz deadline (32k)"});
  a.row({"TyTAN interruptible load", bench::num(gap_async),
         gap_async < 3 * kTick ? "deadline held" : "DEADLINE MISSED"});
  a.row({"SMART/SPM-style atomic load", bench::num(gap_blocking),
         gap_blocking < 3 * kTick ? "deadline held" : "DEADLINE MISSED"});
  a.print();

  // B. Software vs hardware context save.
  const sim::CostModel sw_costs;
  sim::CostModel hw_costs;
  hw_costs.intmux_store_reg = 1;   // parallel hardware store
  hw_costs.intmux_store_shadow = 1;
  hw_costs.intmux_wipe_reg = 0;    // register file clear in one shot
  hw_costs.intmux_branch = 8;      // direct vector, no software mux
  bench::Table b("Ablation B: software (TyTAN) vs hypothetical hardware context save");
  b.columns({"Variant", "Save cost (cycles)"});
  b.row({"software Int Mux (paper's choice)", bench::num(ctx_save_with(sw_costs))});
  b.row({"hardware save (paper 4's alternative)", bench::num(ctx_save_with(hw_costs))});
  b.print();

  // C. Identity truncation.
  const std::uint64_t probe64 = ipc_proxy_cost_with(26);
  const std::uint64_t probe160 = ipc_proxy_cost_with(26 * 5 / 2);
  bench::Table c("Ablation C: 64-bit id_t truncation (footnote 9) vs full 160-bit ids");
  c.columns({"Identity width", "IPC proxy runtime (cycles)"});
  c.row({"64-bit (TyTAN)", bench::num(probe64)});
  c.row({"160-bit (full SHA-1)", bench::num(probe160)});
  c.print();

  // D. Tick-rate sweep: faster ticks = more preemption overhead on the load,
  // slower ticks = coarser deadlines.
  bench::Table d("Ablation D: 12 KiB async load vs RTOS tick period");
  d.columns({"Tick period (cycles)", "Load duration (cycles)", "Interrupts during load"});
  for (const std::uint32_t period : {8'000u, 16'000u, 32'000u, 64'000u, 128'000u}) {
    const auto [duration, irqs] = load_under_tick(period);
    d.row({bench::num(period), bench::num(duration), bench::num(irqs)});
  }
  d.print();

  std::printf("\nConclusions: (A) only the interruptible loader keeps the control task "
              "inside its deadline; (B) hardware save trades gates for ~%.0f%% lower "
              "interrupt latency; (C) truncation trims the proxy's registry walk.\n",
              100.0 * (1.0 - static_cast<double>(ctx_save_with(hw_costs)) /
                                 static_cast<double>(ctx_save_with(sw_costs))));
  return 0;
}
