// Related-work comparison (paper §7): SMART, SPM/SANCUS, TrustLite, TyTAN —
// the qualitative matrix from the paper, with the measurable rows measured
// on the shared simulator substrate.
#include "baselines/baselines.h"
#include "bench_util.h"

using namespace tytan;
using core::Platform;

namespace {

constexpr std::uint32_t kTick = 32'000;

constexpr std::string_view kControl = R"(
    .secure
    .stack 256
    .entry main
main:
    li   r4, 0x100200
    li   r5, 0x100400
loop:
    ldw  r2, [r4]
    stw  r2, [r5]
    movi r0, 2
    movi r1, 1
    int  0x21
    jmp  loop
)";

std::string big_payload() {
  return "    .secure\n    .stack 256\n    .entry main\nmain:\npark:\n"
         "    movi r0, 1\n    int 0x21\n    jmp park\n    .space 7800\n";
}

std::uint64_t worst_gap(const sim::EngineActuator& engine, std::uint64_t from,
                        std::uint64_t to) {
  std::uint64_t last = from;
  std::uint64_t worst = 0;
  for (const auto& command : engine.commands()) {
    if (command.cycle < from || command.cycle > to) {
      continue;
    }
    worst = std::max(worst, command.cycle - last);
    last = command.cycle;
  }
  return std::max(worst, to - last);
}

/// Worst control-loop gap while an 8 KiB task is measured, per architecture.
std::uint64_t measure_gap(bool atomic) {
  Platform::Config config;
  config.tick_period = kTick;
  Platform platform(config);
  TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
  platform.pedal().set_value(10);
  auto control = platform.load_task_source(kControl, {.name = "ctrl", .priority = 6});
  TYTAN_CHECK(control.is_ok(), control.status().to_string());
  platform.run_for(20 * kTick);
  auto object = isa::assemble(big_payload());
  TYTAN_CHECK(object.is_ok(), object.status().to_string());
  auto payload = platform.load_task(object.take(), {.name = "payload",
                                                    .auto_start = false});
  TYTAN_CHECK(payload.is_ok(), payload.status().to_string());

  const std::uint64_t begin = platform.machine().cycles();
  if (atomic) {
    baselines::smart_atomic_attest(platform, *payload);  // SMART/SPM style
  } else {
    // TyTAN: re-measure through the preemptible RTM path, driven by the
    // loader task while the machine runs.
    auto redo = platform.rtm().begin_measurement(*platform.scheduler().get(*payload), {});
    TYTAN_CHECK(redo.is_ok(), redo.to_string());
    while (platform.rtm().measurement_in_progress()) {
      platform.rtm().measure_quantum();
      platform.run_for(400);  // scheduler runs between quanta
    }
    (void)platform.rtm().take_result();
  }
  platform.run_for(10 * kTick);
  return worst_gap(platform.engine(), begin, platform.machine().cycles());
}

const char* yn(bool v) { return v ? "yes" : "no"; }

}  // namespace

int main() {
  // Measured row 1: real-time compatibility of measurement.
  const std::uint64_t gap_atomic = measure_gap(true);
  const std::uint64_t gap_tytan = measure_gap(false);

  // Measured row 2: dynamic loading after boot.
  bool trustlite_dynamic_load = true;
  {
    baselines::TrustLitePlatform trustlite;
    auto object = isa::assemble(kControl);
    TYTAN_CHECK(trustlite.preload(*object, {.name = "boot-task", .priority = 3}).is_ok(),
                "preload failed");
    TYTAN_CHECK(trustlite.boot().is_ok(), "TrustLite boot failed");
    trustlite_dynamic_load = trustlite.load_task(*object, {.name = "late"}).is_ok();
  }

  // Measured row 3: relocation / flexible placement (SPM has none).
  bool spm_loads_at_busy_base = true;
  {
    Platform platform;
    TYTAN_CHECK(platform.boot().is_ok(), "boot failed");
    // Occupy the first arena region, then try to SPM-load a module linked
    // exactly there.
    auto blocker = platform.load_task_source(kControl, {.name = "blocker",
                                                        .auto_start = false});
    TYTAN_CHECK(blocker.is_ok(), blocker.status().to_string());
    const std::uint32_t linked_base =
        platform.scheduler().get(*blocker)->region_base;
    isa::ObjectFile fixed;
    fixed.image.assign(256, 0);  // position-dependent module, no relocations
    fixed.stack_size = 64;
    spm_loads_at_busy_base =
        baselines::spm_load_fixed(platform, std::move(fixed), linked_base,
                                  {.name = "spm-module", .auto_start = false})
            .is_ok();
  }

  bench::Table table("Related work (paper SS7): measured architectural consequences");
  table.columns({"Property", "SMART", "SPM/SANCUS", "TrustLite", "TyTAN"});
  table.row({"protected tasks", "1 (ROM)", "N (fixed layout)", "N (boot-time)",
             "N (dynamic)"});
  table.row({"load after boot", yn(baselines::SmartProperties::kDynamicLoad), "at linked base only",
             yn(trustlite_dynamic_load), "yes"});
  table.row({"relocation", "no", spm_loads_at_busy_base ? "yes!?" : "no (load failed)",
             "yes", "yes"});
  table.row({"measurement preemptible", "no", "no", "n/a (boot)", "yes"});
  table.row({"worst control gap during 8KiB measurement (cycles)",
             bench::num(gap_atomic), bench::num(gap_atomic), "-", bench::num(gap_tytan)});
  table.row({"deadline (3 ticks = 96k) held", gap_atomic < 3 * kTick ? "yes" : "NO",
             gap_atomic < 3 * kTick ? "yes" : "NO", "-",
             gap_tytan < 3 * kTick ? "yes" : "NO"});
  table.row({"secure IPC w/ sender auth", "no", "no", "no", "yes"});
  table.row({"runtime update", "no", "no", "no", "yes (UpdateManager)"});
  table.print();

  std::printf("\nThe measured rows quantify the paper's §7 arguments: atomic\n"
              "measurement (SMART/SPM) blocks the control loop for %llu cycles (~%.1f\n"
              "scheduling periods) while TyTAN's preemptible RTM keeps the gap at %llu\n"
              "cycles; TrustLite rejects post-boot loading; SPM cannot place a module\n"
              "whose linked base is taken.\n",
              static_cast<unsigned long long>(gap_atomic),
              static_cast<double>(gap_atomic) / kTick,
              static_cast<unsigned long long>(gap_tytan));
  return 0;
}
